// Package rtfftl implements "rtfFTL", the return-to-fast comparison FTL
// modeled on Grupp et al.'s Harey Tortoise (USENIX ATC 2013) as the paper
// configures it: each chip keeps a pool of eight active blocks under FPS so
// that up to eight successive writes per chip can land on fast LSB pages,
// and a background garbage collector aggressively consumes paired MSB pages
// during idle times so the active pool "returns to fast". Paired-page safety
// uses the same FPS pre-backup as parityFTL — one parity page per two LSB
// pages — which is the best an FPS FTL can do (the paper's footnote 4); the
// scheme still erases more than parityFTL because the aggressive drain
// spends pages (including padding writes when no relocation source exists).
package rtfftl

import (
	"fmt"

	"flexftl/internal/core"
	"flexftl/internal/ftl"
	"flexftl/internal/nand"
	"flexftl/internal/obs"
	"flexftl/internal/parity"
	"flexftl/internal/sim"
)

// ActiveBlocksPerChip is the active pool depth of the paper's rtfFTL
// configuration.
const ActiveBlocksPerChip = 8

// PairSize is how many LSB pages share one pre-backup parity page under FPS.
const PairSize = 2

// FTL is the return-to-fast FTL.
type FTL struct {
	*ftl.Base
	order  []core.Page
	active [][]cursor // [chip][slot]; blk -1 when the slot awaits a block
	backup []backupRing
	pbuf   []*parity.Buffer // per chip: parity of the LSB pair in flight
	psnap  []byte           // scratch for parity snapshots (Program copies)
}

type cursor struct {
	blk int
	pos int
}

type backupRing struct {
	cur  int
	pos  int
	prev int
}

var _ ftl.FTL = (*FTL)(nil)

// New builds an rtfFTL over the device.
func New(dev *nand.Device, cfg ftl.Config) (*FTL, error) {
	base, err := ftl.NewBase(dev, cfg)
	if err != nil {
		return nil, err
	}
	g := dev.Geometry()
	if g.BlocksPerChip < ActiveBlocksPerChip+cfg.MinFreeBlocksPerChip+2 {
		return nil, fmt.Errorf("rtfftl: %d blocks/chip too few for %d active blocks",
			g.BlocksPerChip, ActiveBlocksPerChip)
	}
	f := &FTL{
		Base:   base,
		order:  core.FPSOrder(g.WordLinesPerBlock),
		active: make([][]cursor, g.Chips()),
		backup: make([]backupRing, g.Chips()),
		pbuf:   make([]*parity.Buffer, g.Chips()),
	}
	for c := range f.active {
		slots := make([]cursor, ActiveBlocksPerChip)
		for s := range slots {
			blk, ok := f.Pools[c].PopFree()
			if !ok {
				return nil, fmt.Errorf("rtfftl: chip %d cannot seed active pool", c)
			}
			slots[s] = cursor{blk: blk}
		}
		f.active[c] = slots
		f.backup[c] = backupRing{cur: -1, prev: -1}
		f.pbuf[c] = parity.New(ftl.TokenSize)
	}
	return f, nil
}

// Name identifies the scheme.
func (f *FTL) Name() string { return "rtfFTL" }

// Write services a host page write, preferring a fast LSB page from the
// active pool.
func (f *FTL) Write(lpn ftl.LPN, now sim.Time, util float64) (sim.Time, error) {
	chip := f.NextChip()
	done, err := f.program(chip, lpn, f.Token(lpn), f.Spare(lpn), now, false, true)
	if err != nil {
		return now, err
	}
	f.St.HostWrites++
	return done, nil
}

// Read services a host page read.
func (f *FTL) Read(lpn ftl.LPN, now sim.Time) (sim.Time, error) {
	return f.ReadLPN(lpn, now)
}

// pickSlot returns the index of the most-filled slot whose next page matches
// wantLSB, or -1 if none. Concentrating writes in the fullest block keeps
// data of similar age together (near-pageFTL victim quality); the pool's
// breadth exists for LSB availability, not for striping.
func (f *FTL) pickSlot(chip int, wantLSB bool) int {
	best, bestPos := -1, -1
	for s, cur := range f.active[chip] {
		if cur.blk == -1 {
			continue
		}
		if (f.order[cur.pos].Type == core.LSB) == wantLSB && cur.pos > bestPos {
			best, bestPos = s, cur.pos
		}
	}
	return best
}

// program writes one page on the chip. preferLSB selects the return-to-fast
// preference (hosts prefer LSB; idle GC prefers MSB to drain slow pages).
func (f *FTL) program(chip int, lpn ftl.LPN, data, spare []byte, now sim.Time, fromGC, preferLSB bool) (sim.Time, error) {
	if !fromGC {
		var err error
		now, err = f.foregroundGC(chip, now)
		if err != nil {
			return now, err
		}
	}
	var err error
	now, err = f.refillSlots(chip, now)
	if err != nil {
		return now, err
	}
	slot := f.pickSlot(chip, preferLSB)
	if slot == -1 {
		slot = f.pickSlot(chip, !preferLSB)
	}
	if slot == -1 {
		return now, fmt.Errorf("rtfftl: chip %d has no programmable active block", chip)
	}
	cur := &f.active[chip][slot]
	page := f.order[cur.pos]

	addr := nand.PageAddr{BlockAddr: nand.BlockAddr{Chip: chip, Block: cur.blk}, Page: page}
	done, err := f.Dev.Program(addr, data, spare, now)
	if err != nil {
		return now, err
	}
	f.Map.Update(lpn, f.Dev.Geometry().PPNOf(addr))
	if page.Type == core.LSB {
		if fromGC {
			f.St.GCCopiesLSB++
		} else {
			f.St.HostWritesLSB++
		}
		// Pre-backup parity: every PairSize LSB programs emit one parity
		// page, covering the paired-page hazard before the MSBs arrive.
		if err := f.pbuf[chip].Add(data); err != nil {
			return done, err
		}
		if f.pbuf[chip].Count() >= PairSize {
			f.psnap = f.pbuf[chip].SnapshotInto(f.psnap)
			done, err = f.writeBackup(chip, f.psnap, done)
			if err != nil {
				return done, err
			}
			f.pbuf[chip].Reset()
		}
	} else {
		f.Dev.AckProgram(addr.BlockAddr) // parity pre-backup covers the pair
		if fromGC {
			f.St.GCCopiesMSB++
		} else {
			f.St.HostWritesMSB++
		}
	}
	cur.pos++
	if cur.pos == len(f.order) {
		f.Pools[chip].PushFull(cur.blk)
		cur.blk = -1
	}
	return done, nil
}

// refillSlots tops up empty active slots from the free pool while keeping a
// reserve for the backup ring and GC; with the pool at reserve it still
// force-refills one slot so a program is always possible.
func (f *FTL) refillSlots(chip int, now sim.Time) (sim.Time, error) {
	reserve := f.Cfg.MinFreeBlocksPerChip
	for s := range f.active[chip] {
		if f.active[chip][s].blk != -1 {
			continue
		}
		if f.Pools[chip].FreeCount() <= reserve {
			break // run with a shallower pool until GC frees blocks
		}
		blk, ok := f.Pools[chip].PopFree()
		if !ok {
			break
		}
		f.active[chip][s] = cursor{blk: blk}
	}
	// At least one slot must be usable.
	for s := range f.active[chip] {
		if f.active[chip][s].blk != -1 {
			return now, nil
		}
	}
	blk, ok := f.Pools[chip].PopFree()
	if !ok {
		return now, fmt.Errorf("rtfftl: chip %d active pool empty and no free blocks", chip)
	}
	f.active[chip][0] = cursor{blk: blk}
	return now, nil
}

// writeBackup programs one parity page into the chip's backup ring.
func (f *FTL) writeBackup(chip int, data []byte, now sim.Time) (sim.Time, error) {
	ring := &f.backup[chip]
	if ring.cur == -1 {
		blk, ok := f.Pools[chip].PopFree()
		if !ok {
			return now, fmt.Errorf("rtfftl: chip %d has no free block for backups", chip)
		}
		ring.cur, ring.pos = blk, 0
	}
	addr := nand.PageAddr{
		BlockAddr: nand.BlockAddr{Chip: chip, Block: ring.cur},
		Page:      f.order[ring.pos],
	}
	done, err := f.Dev.Program(addr, data, nil, now)
	if err != nil {
		return now, err
	}
	f.St.BackupWrites++
	f.Obs.Instant(obs.KindBackup, int32(chip), now, int64(ring.cur), int64(ring.pos))
	ring.pos++
	if ring.pos == len(f.order) {
		// A filled backup block's parities are long stale (their paired
		// MSB windows closed many word lines ago); recycle the previous.
		if ring.prev != -1 {
			done, err = f.EraseAndFree(chip, ring.prev, done)
			if err != nil {
				return done, err
			}
		}
		ring.prev, ring.cur = ring.cur, -1
	}
	return done, nil
}

// padOneMSB programs the first MSB-next slot with a dummy payload purely to
// advance its cursor back to an LSB page. The padded page is born invalid —
// capacity traded for burst readiness, rtfFTL's lifetime weakness.
func (f *FTL) padOneMSB(chip int, now sim.Time) (sim.Time, error) {
	slot := f.pickSlot(chip, false)
	if slot == -1 {
		return now, nil
	}
	cur := &f.active[chip][slot]
	page := f.order[cur.pos]
	addr := nand.PageAddr{BlockAddr: nand.BlockAddr{Chip: chip, Block: cur.blk}, Page: page}
	done, err := f.Dev.Program(addr, nil, nil, now)
	if err != nil {
		return now, err
	}
	f.Dev.AckProgram(addr.BlockAddr)
	f.St.PadWrites++
	f.Obs.Instant(obs.KindPad, int32(chip), now, int64(cur.blk), int64(page.WL))
	cur.pos++
	if cur.pos == len(f.order) {
		f.Pools[chip].PushFull(cur.blk)
		cur.blk = -1
	}
	return done, nil
}

// gcAlloc relocates a page, consuming MSB pages by preference — the
// return-to-fast drain.
func (f *FTL) gcAlloc(chip int, lpn ftl.LPN, data, spare []byte, now sim.Time) (sim.Time, error) {
	return f.program(chip, lpn, data, spare, now, true, false)
}

func (f *FTL) foregroundGC(chip int, now sim.Time) (sim.Time, error) {
	for f.Pools[chip].FreeCount() < f.Cfg.MinFreeBlocksPerChip+1 {
		victim, ok := f.Pools[chip].PickVictim()
		if !ok {
			break
		}
		var err error
		now, err = f.CollectVictim(chip, victim, now, f.gcAlloc)
		if err != nil {
			return now, err
		}
		f.St.ForegroundGCs++
	}
	return now, nil
}

// lsbReadyCount counts active slots whose next page is an LSB page.
func (f *FTL) lsbReadyCount(chip int) int {
	n := 0
	for _, cur := range f.active[chip] {
		if cur.blk != -1 && f.order[cur.pos].Type == core.LSB {
			n++
		}
	}
	return n
}

// chipHasMSBNext reports whether the chip's active pool has a slot waiting
// on an MSB page.
func (f *FTL) chipHasMSBNext(chip int) bool {
	for _, cur := range f.active[chip] {
		if cur.blk != -1 && f.order[cur.pos].Type == core.MSB {
			return true
		}
	}
	return false
}

// msbNextSlots reports whether any chip has an active slot waiting on an MSB
// page (i.e. the pool has not fully "returned to fast").
func (f *FTL) msbNextSlots() bool {
	for chip := range f.active {
		if f.chipHasMSBNext(chip) {
			return true
		}
	}
	return false
}

// Idle first reclaims space incrementally like the other FTLs, then
// aggressively consumes pending paired MSB pages so subsequent bursts land
// on fast LSB pages again — the return-to-fast drain.
func (f *FTL) Idle(now, until sim.Time) {
	now = f.RunBackgroundGC(now, until, f.BGCWanted, f.gcAlloc)
	for chip := range f.active {
		var err error
		now, err = f.drainMSBSlots(chip, now, until)
		if err != nil {
			return
		}
	}
}

// drainMSBSlots relocates valid pages from GC candidates into the chip's
// MSB-next slots, one page at a time, until the pool is ready for a burst or
// the idle window closes. When no relocation source exists, slots are padded
// with dummy MSB programs, but only up to half the pool — padding burns
// capacity, so full return-to-fast is reserved for relocation-backed drains.
func (f *FTL) drainMSBSlots(chip int, now, until sim.Time) (sim.Time, error) {
	g := f.Dev.Geometry()
	t := f.Dev.Timing()
	perPage := t.Read + 2*t.BusXfer + t.ProgMSB + t.ProgLSB // copy + possible backup
	for now+perPage <= until && f.chipHasMSBNext(chip) {
		victim, ok := f.Pools[chip].PickVictim()
		if !ok {
			// No relocation source: pad only down to a minimal burst
			// readiness of two LSB-ready slots — wholesale padding would
			// waste capacity out of proportion to the bursts it serves.
			if f.lsbReadyCount(chip) >= 2 {
				return now, nil
			}
			var err error
			now, err = f.padOneMSB(chip, now)
			if err != nil {
				return now, err
			}
			continue
		}
		ppn, hasValid := f.Map.FirstValidPage(nand.BlockAddr{Chip: chip, Block: victim})
		if !hasValid {
			// Fully invalid block: erase it instead; that is pure gain.
			f.Pools[chip].TakeFull(victim)
			f.Map.ClearBlock(nand.BlockAddr{Chip: chip, Block: victim})
			done, err := f.Dev.Erase(nand.BlockAddr{Chip: chip, Block: victim}, now)
			if err != nil {
				return now, err
			}
			f.St.Erases++
			f.Pools[chip].PushFree(victim)
			now = done
			continue
		}
		lpn, ok := f.Map.LPNAt(ppn)
		if !ok {
			return now, nil
		}
		tRead, err := f.Dev.ReadInto(g.AddrOfPPN(ppn), &f.Buf, now)
		if err != nil {
			return now, err
		}
		done, err := f.program(chip, lpn, f.Buf.Data, f.Buf.Spare, tRead, true, false)
		if err != nil {
			return now, err
		}
		f.St.GCCopies++
		now = done
	}
	return now, nil
}
