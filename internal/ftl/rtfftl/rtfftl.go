// Package rtfftl implements "rtfFTL", the return-to-fast comparison FTL
// modeled on Grupp et al.'s Harey Tortoise (USENIX ATC 2013) as the paper
// configures it: each chip keeps a pool of eight active blocks under FPS so
// that up to eight successive writes per chip can land on fast LSB pages,
// and a background garbage collector aggressively consumes paired MSB pages
// during idle times so the active pool "returns to fast". Paired-page safety
// uses the same FPS pre-backup as parityFTL — one parity page per two LSB
// pages — which is the best an FPS FTL can do (the paper's footnote 4); the
// scheme still erases more than parityFTL because the aggressive drain
// spends pages (including padding writes when no relocation source exists).
//
// The scheme is a pure configuration of the ftl kernel: the FPS active-pool
// order policy, pair-parity pre-backup, and the fixed fast/slow allocator
// (see ftl.NewRTFFTL). This package exists for import-path compatibility and
// scheme-local tests.
package rtfftl

import (
	"flexftl/internal/ftl"
	"flexftl/internal/nand"
)

// ActiveBlocksPerChip is the active pool depth of the paper's rtfFTL
// configuration.
const ActiveBlocksPerChip = 8

// PairSize is how many LSB pages share one pre-backup parity page under FPS.
const PairSize = 2

// FTL is the return-to-fast FTL.
type FTL = ftl.Kernel

// New builds an rtfFTL over the device.
func New(dev *nand.Device, cfg ftl.Config) (*FTL, error) {
	return ftl.NewRTFFTL(dev, cfg)
}
