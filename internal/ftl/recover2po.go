package ftl

// Reboot-time procedures for two-phase-ordered kernels with per-block parity
// (Section 3.3, Figure 7(b)): sudden-power-off recovery of corrupted LSB
// pages, and a full mapping-table rebuild from flash. Both require the
// TwoPhaseOrderPolicy + BlockParityBackup configuration (flexFTL); calling
// them on any other kernel is an error.

import (
	"errors"
	"fmt"

	"flexftl/internal/core"
	"flexftl/internal/nand"
	"flexftl/internal/parity"
	"flexftl/internal/sim"
)

// RecoveryReport summarizes a reboot-time error recovery pass (Section 3.3,
// Figure 7(b)).
type RecoveryReport struct {
	// PagesRead counts the LSB page reads of the scan (active slow blocks
	// and active fast blocks) plus parity page reads.
	PagesRead int
	// Recovered lists the LPNs whose LSB data was reconstructed from the
	// per-block parity page.
	Recovered []LPN
	// RolledBack lists LPNs of interrupted MSB programs whose superseded
	// copy still existed on flash: the mapping was re-pointed at it. This is
	// required when the interrupted program was a GC relocation — that data
	// was acknowledged long ago and must survive — and strictly better than
	// dropping for host writes.
	RolledBack []LPN
	// Dropped lists the LPNs of interrupted MSB programs with no surviving
	// prior copy: those writes were never acknowledged to the host, so their
	// data is (correctly) lost.
	Dropped []LPN
	// Start and End delimit the recovery pass in virtual time. Chips scan
	// in parallel; End-Start is the reboot-time overhead the paper bounds
	// at ~82 ms of page reads.
	Start, End sim.Time
}

// Duration returns the recovery pass's elapsed virtual time.
func (r RecoveryReport) Duration() sim.Time { return r.End - r.Start }

// RebuildReport summarizes a full mapping-table reconstruction.
type RebuildReport struct {
	PagesScanned int
	Mapped       int64
	Mismatches   int64 // entries that disagreed with the pre-rebuild table
	Start, End   sim.Time
}

// Duration returns the scan's elapsed virtual time.
func (r RebuildReport) Duration() sim.Time { return r.End - r.Start }

// recoveryPolicies returns the two-phase order policy and block-parity backup
// the reboot procedures operate on.
func (k *Kernel) recoveryPolicies() (*twoPhase, *blockParity, error) {
	tp, okOrder := k.ord.(*twoPhase)
	bp, okBackup := k.bk.(*blockParity)
	if !okOrder || !okBackup {
		return nil, nil, fmt.Errorf("%s: recovery requires two-phase ordering with per-block parity", k.name)
	}
	return tp, bp, nil
}

// Recover runs the reboot-time procedure after a sudden power-off: for every
// active slow block it re-reads all LSB pages while recomputing the
// accumulated parity; an ECC-uncorrectable page is reconstructed from the
// saved per-block parity page and re-written; the partially accumulated
// parity of every active fast block is recomputed as well.
func (k *Kernel) Recover(now sim.Time) (RecoveryReport, error) {
	rep := RecoveryReport{Start: now}
	tp, bp, err := k.recoveryPolicies()
	if err != nil {
		return rep, err
	}
	end := now
	for chip := range tp.chips {
		chipEnd, err := k.recoverChip(tp, bp, chip, now, &rep)
		if err != nil {
			return rep, err
		}
		if chipEnd > end {
			end = chipEnd
		}
	}
	rep.End = end
	return rep, nil
}

func (k *Kernel) recoverChip(tp *twoPhase, bp *blockParity, chip int, now sim.Time, rep *RecoveryReport) (sim.Time, error) {
	ch := &tp.chips[chip]
	g := k.Dev.Geometry()
	wl := g.WordLinesPerBlock

	// 1. Handle the interrupted MSB write, if any: its program never
	// completed, so its new copy is gone. If the copy it superseded still
	// exists on flash the mapping rolls back to it — mandatory when the
	// program was a GC relocation (that data was acknowledged long ago) —
	// otherwise the LPN is dropped: the host was never acknowledged. The
	// device holds at most one destructive window per chip, so only the
	// stream of the chip's most recent MSB program can be interrupted.
	if st := &ch.streams[ch.lastMSBStream]; st.sbq.Len() > 0 && st.asbPos > 0 {
		blk := st.sbq.Front()
		msbAddr := nand.PageAddr{
			BlockAddr: nand.BlockAddr{Chip: chip, Block: blk},
			Page:      core.Page{WL: st.asbPos - 1, Type: core.MSB},
		}
		if k.Dev.IsCorrupted(msbAddr) {
			if lpn, ok := k.Map.LPNAt(g.PPNOf(msbAddr)); ok {
				now = k.dropOrRollBack(ch, st, chip, lpn, now, rep)
			}
		}
	}

	// 2. Scan every stream's active slow block: read every LSB page;
	// reconstruct at most one lost page per block.
	for si := range ch.streams {
		st := &ch.streams[si]
		if st.sbq.Len() == 0 {
			continue
		}
		blk := st.sbq.Front()
		var survivors [][]byte
		lostWL := -1
		for p := 0; p < wl; p++ {
			addr := nand.PageAddr{
				BlockAddr: nand.BlockAddr{Chip: chip, Block: blk},
				Page:      core.Page{WL: p, Type: core.LSB},
			}
			data, _, t, err := k.Dev.Read(addr, now)
			rep.PagesRead++
			now = t
			switch {
			case err == nil:
				survivors = append(survivors, data)
			case errors.Is(err, nand.ErrUncorrectable):
				if lostWL != -1 {
					return now, fmt.Errorf("%s: chip %d block %d lost two LSB pages (%d and %d); parity covers one", k.name, chip, blk, lostWL, p)
				}
				lostWL = p
			default:
				return now, fmt.Errorf("%s: recovery read %v: %w", k.name, addr, err)
			}
		}
		if lostWL != -1 {
			var err error
			now, err = k.reconstructLSB(tp, bp, chip, blk, lostWL, survivors, now, rep)
			if err != nil {
				return now, err
			}
		}
	}

	// 3. Recompute the partial parity accumulation of every stream's active
	// fast block.
	for si := range ch.streams {
		st := &ch.streams[si]
		if st.afb == -1 || st.afbPos == 0 {
			continue
		}
		bp.pbuf[chip][si].Reset()
		for p := 0; p < st.afbPos; p++ {
			addr := nand.PageAddr{
				BlockAddr: nand.BlockAddr{Chip: chip, Block: st.afb},
				Page:      core.Page{WL: p, Type: core.LSB},
			}
			t, err := k.Dev.ReadInto(addr, &k.Buf, now)
			rep.PagesRead++
			now = t
			if err != nil {
				return now, fmt.Errorf("%s: fast-block rescan %v: %w", k.name, addr, err)
			}
			if err := bp.pbuf[chip][si].Add(k.Buf.Data); err != nil {
				return now, err
			}
		}
	}
	return now, nil
}

// dropOrRollBack resolves the mapping of an interrupted MSB program. The
// two-phase order tracks, per chip, the physical page the most recent MSB
// program superseded; if that copy still holds this LPN's data the mapping
// rolls back to it. The superseded copy may even be the corrupted paired LSB
// of the interrupted program itself (an in-block rewrite) — that page is
// parity-recoverable, so the rollback stands and the step-2 scan re-homes
// it. Only when no prior copy survives is the LPN dropped.
func (k *Kernel) dropOrRollBack(ch *twoPhaseChip, st *twoPhaseStream, chip int, lpn LPN, now sim.Time, rep *RecoveryReport) sim.Time {
	g := k.Dev.Geometry()
	if ch.lastMSBLPN == lpn && ch.lastMSBPrev != nand.InvalidPPN {
		prevAddr := g.AddrOfPPN(ch.lastMSBPrev)
		pairAddr := nand.PageAddr{
			BlockAddr: nand.BlockAddr{Chip: chip, Block: st.sbq.Front()},
			Page:      core.Page{WL: st.asbPos - 1, Type: core.LSB},
		}
		if prevAddr == pairAddr && k.Dev.IsCorrupted(prevAddr) {
			// In-block rewrite: the prior copy is the destroyed pair itself.
			// Parity reconstructs it, so point the mapping back at it now
			// and let the slow-block scan re-home it under this LPN.
			k.Map.Update(lpn, ch.lastMSBPrev)
			rep.RolledBack = append(rep.RolledBack, lpn)
			return now
		}
		t, err := k.Dev.ReadInto(prevAddr, &k.Buf, now)
		rep.PagesRead++
		now = t
		if err == nil {
			// The token guards against the page having been erased and
			// reprogrammed for another LPN (possible only for cross-chip
			// prior copies of host writes; GC relocations stay on-chip,
			// where the device's erase barrier keeps the copy intact).
			if tokLPN, ok := TokenLPN(k.Buf.Data); ok && tokLPN == lpn {
				k.Map.Update(lpn, ch.lastMSBPrev)
				rep.RolledBack = append(rep.RolledBack, lpn)
				return now
			}
		}
	}
	k.Map.Invalidate(lpn)
	rep.Dropped = append(rep.Dropped, lpn)
	return now
}

// reconstructLSB rebuilds the lost LSB page from the saved parity page and
// the surviving LSB pages, then re-writes the data if it was still valid.
func (k *Kernel) reconstructLSB(tp *twoPhase, bp *blockParity, chip, blk, lostWL int, survivors [][]byte, now sim.Time, rep *RecoveryReport) (sim.Time, error) {
	g := k.Dev.Geometry()
	var parityPage []byte
	flat := k.Map.FlatBlock(nand.BlockAddr{Chip: chip, Block: blk})
	if ref := bp.refs[flat]; ref.backupBlk != -1 {
		// Fast path: the in-memory ref locates the parity page directly.
		parityAddr := nand.PageAddr{
			BlockAddr: nand.BlockAddr{Chip: chip, Block: ref.backupBlk},
			Page:      core.Page{WL: ref.page, Type: core.LSB},
		}
		t, err := k.Dev.ReadInto(parityAddr, &k.Buf, now)
		rep.PagesRead++
		now = t
		if err != nil {
			return now, fmt.Errorf("%s: reading parity page %v: %w", k.name, parityAddr, err)
		}
		if got, ok := blockFromSpare(k.Buf.Spare); !ok || got != blk {
			return now, fmt.Errorf("%s: parity page %v inverse-maps to block %v, want %d", k.name, parityAddr, got, blk)
		}
		parityPage = k.Buf.Data
	} else {
		// Metadata-loss path: the per-block ref table did not survive the
		// reboot, so locate the parity page the way the paper's inverse
		// mapping intends — scan the chip's backup blocks and match the
		// protected-block number in each parity page's spare area. The
		// newest match wins (block numbers recur across generations).
		var err error
		parityPage, now, err = k.scanForParity(bp, chip, blk, now, rep)
		if err != nil {
			return now, err
		}
	}
	if len(parityPage) > TokenSize {
		parityPage = parityPage[:TokenSize]
	}
	recovered, err := parity.Recover(parityPage, survivors)
	if err != nil {
		return now, err
	}

	// If the lost page held live data, re-home it; the recovered token
	// carries its LPN.
	lostAddr := nand.PageAddr{
		BlockAddr: nand.BlockAddr{Chip: chip, Block: blk},
		Page:      core.Page{WL: lostWL, Type: core.LSB},
	}
	lpn, live := k.Map.LPNAt(g.PPNOf(lostAddr))
	if !live {
		return now, nil // stale page: parity recomputation is all we needed
	}
	if tokLPN, ok := TokenLPN(recovered); !ok || tokLPN != lpn {
		return now, fmt.Errorf("%s: recovered payload LPN %v does not match mapping %v", k.name, tokLPN, lpn)
	}
	// Re-home on the cold stream: recovered data just survived a crash on a
	// slow block, and stream 0 always exists.
	now, err = tp.program(k, chip, streamCold, PrefFast, lpn, recovered, SpareForLPN(lpn), now, false)
	if err != nil {
		return now, fmt.Errorf("%s: re-homing recovered LPN %d: %w", k.name, lpn, err)
	}
	rep.Recovered = append(rep.Recovered, lpn)
	return now, nil
}

// scanForParity walks the chip's backup blocks in write order — the retired
// ring first, then the current block's written prefix — reading each parity
// page's spare area and keeping the newest page whose inverse mapping names
// the protected block. Only the backup-block list itself (a tiny superblock
// structure any FTL persists) is assumed to survive the reboot.
func (k *Kernel) scanForParity(bp *blockParity, chip, protectedBlk int, now sim.Time, rep *RecoveryReport) ([]byte, sim.Time, error) {
	bk := &bp.backup[chip]
	type candidate struct {
		blk   int
		pages int
	}
	var scan []candidate
	for _, r := range bk.retired {
		// Only the retired block's recorded fill was ever programmed;
		// scanning the full word-line width would charge phantom reads of
		// erased pages to the reboot-time budget.
		scan = append(scan, candidate{r.blk, r.fill})
	}
	if bk.cur != -1 {
		scan = append(scan, candidate{bk.cur, bk.pos})
	}
	var found []byte
	for _, c := range scan {
		for p := 0; p < c.pages; p++ {
			addr := nand.PageAddr{
				BlockAddr: nand.BlockAddr{Chip: chip, Block: c.blk},
				Page:      core.Page{WL: p, Type: core.LSB},
			}
			page, spare, t, err := k.Dev.Read(addr, now)
			rep.PagesRead++
			now = t
			if err != nil {
				continue // unreadable backup page: keep scanning
			}
			if got, ok := blockFromSpare(spare); ok && got == protectedBlk {
				found = page // later matches supersede earlier ones
			}
		}
	}
	if found == nil {
		return nil, now, fmt.Errorf("%s: no parity page for block %d found on chip %d's backup blocks", k.name, protectedBlk, chip)
	}
	return found, now, nil
}

// ForgetParityRefs drops the in-memory parity location table, simulating a
// reboot that lost runtime metadata; subsequent recoveries must locate
// parity pages by scanning backup-block spare areas.
func (k *Kernel) ForgetParityRefs() {
	if bp, ok := k.bk.(*blockParity); ok {
		bp.resetRefs(k.Dev.Geometry().TotalBlocks())
	}
}

// ParityScanReport summarizes a RebuildParityRefs pass.
type ParityScanReport struct {
	// PagesRead counts backup-block parity page reads (fills only — sealed
	// and retired blocks are scanned to their recorded fill).
	PagesRead int
	// Restored is how many parity refs were reconstructed from spare areas.
	Restored int
	// Sealed counts partially written backup blocks retired at their
	// crash-time fill.
	Sealed int
	// Recycled counts retired backup blocks whose parities all turned out
	// stale and were erased back to the free pool.
	Recycled   int
	Start, End sim.Time
}

// Duration returns the scan's elapsed virtual time.
func (r ParityScanReport) Duration() sim.Time { return r.End - r.Start }

// RebuildParityRefs reconstructs the in-memory parity location table and the
// backup blocks' live counts from flash, for a reboot that lost runtime
// metadata (after ForgetParityRefs). Per chip it first seals the current
// backup block at its crash-time fill — appending to a partially written
// backup block after an unclean shutdown would risk the very pages the
// backup exists to protect — then scans every written backup page's spare
// area, restoring refs for the blocks still awaiting their slow phase (the
// slow-block queue; newer parities supersede older generations of the same
// block number). Retired backup blocks whose parities are all stale are
// recycled — without this pass they would leak forever, since
// onSlowComplete can no longer find their refs.
func (k *Kernel) RebuildParityRefs(now sim.Time) (ParityScanReport, error) {
	rep := ParityScanReport{Start: now}
	tp, bp, err := k.recoveryPolicies()
	if err != nil {
		return rep, err
	}
	bp.resetRefs(k.Dev.Geometry().TotalBlocks())
	end := now
	for chip := range tp.chips {
		chipNow := now
		bk := &bp.backup[chip]
		if bk.cur != -1 {
			if bk.pos > 0 {
				bk.retired = append(bk.retired, retiredBackup{blk: bk.cur, fill: bk.pos})
				rep.Sealed++
			} else {
				// Never written: straight back to the free pool.
				k.Pools[chip].PushFree(bk.cur)
			}
			bk.cur, bk.pos = -1, 0
		}
		// The blocks still awaiting their slow phase — across every placement
		// stream's queue; a hot-stream block's parity is as live as a cold
		// one's (the pre-placement-axis code read only one queue here, which
		// would silently drop hot-stream refs and leak their backup blocks).
		ch2 := &tp.chips[chip]
		need := make(map[int]bool)
		for si := range ch2.streams {
			sbq := &ch2.streams[si].sbq
			for i := 0; i < sbq.Len(); i++ {
				need[sbq.At(i)] = true
			}
		}
		bk.live = make(map[int]int, len(bk.retired))
		for _, r := range bk.retired {
			for p := 0; p < r.fill; p++ {
				addr := nand.PageAddr{
					BlockAddr: nand.BlockAddr{Chip: chip, Block: r.blk},
					Page:      core.Page{WL: p, Type: core.LSB},
				}
				t, err := k.Dev.ReadInto(addr, &k.Buf, chipNow)
				rep.PagesRead++
				chipNow = t
				if err != nil {
					continue // unreadable backup page: keep scanning
				}
				protected, ok := blockFromSpare(k.Buf.Spare)
				if !ok || !need[protected] {
					continue
				}
				flat := k.Map.FlatBlock(nand.BlockAddr{Chip: chip, Block: protected})
				if old := bp.refs[flat]; old.backupBlk != -1 {
					bk.live[old.backupBlk]-- // superseded by a newer generation
				}
				bp.refs[flat] = parityRef{backupBlk: r.blk, page: p}
				bk.live[r.blk]++
			}
		}
		before := len(bk.retired)
		bp.recycleRetired(k, chip)
		rep.Recycled += before - len(bk.retired)
		if chipNow > end {
			end = chipNow
		}
	}
	rep.Restored = bp.refLive()
	rep.End = end
	return rep, nil
}

// RebuildMapping reconstructs the logical-to-physical table from flash
// alone: every programmed data page carries its LPN in the spare area and a
// monotone global sequence number in its payload token, so scanning all
// pages and keeping the highest-sequence version per LPN yields the current
// map. This is the full-reboot path a host-level FTL needs when its RAM
// table is gone (the paper's recovery discussion assumes the map; this
// closes that assumption).
//
// The scan respects device timing (every page is read), chips proceeding in
// parallel. Backup-block parity pages identify themselves by their spare
// layout (block-number inverse mapping) and their position outside the data
// pools; they are excluded by consulting the FTL's backup-block lists, which
// a real implementation would persist in a tiny superblock.
func (k *Kernel) RebuildMapping(now sim.Time) (RebuildReport, error) {
	rep := RebuildReport{Start: now}
	_, bp, err := k.recoveryPolicies()
	if err != nil {
		return rep, err
	}
	g := k.Dev.Geometry()

	old := k.Map
	fresh := NewMapper(g, k.LogicalPages())
	bestSeq := make(map[LPN]uint64)

	end := now
	for chip := 0; chip < g.Chips(); chip++ {
		chipNow := now
		backup := bp.backupBlockSet(chip)
		for blk := 0; blk < g.BlocksPerChip; blk++ {
			if backup[blk] {
				continue
			}
			for idx := 0; idx < g.PagesPerBlock(); idx++ {
				page := core.PageFromIndex(idx, g.WordLinesPerBlock)
				addr := nand.PageAddr{BlockAddr: nand.BlockAddr{Chip: chip, Block: blk}, Page: page}
				if !k.Dev.IsProgrammed(addr) {
					continue
				}
				t, err := k.Dev.ReadInto(addr, &k.Buf, chipNow)
				rep.PagesScanned++
				chipNow = t
				if err != nil {
					if errors.Is(err, nand.ErrUncorrectable) {
						continue // lost page; parity recovery handles it separately
					}
					return rep, fmt.Errorf("%s: rebuild read %v: %w", k.name, addr, err)
				}
				data, spare := k.Buf.Data, k.Buf.Spare
				lpn, ok := LPNFromSpare(spare)
				if !ok || lpn < 0 || int64(lpn) >= k.LogicalPages() {
					continue // not a data page (e.g. padding)
				}
				tokLPN, ok := TokenLPN(data)
				if !ok || tokLPN != lpn {
					continue // payload disagrees with spare: not a live data page
				}
				seq := tokenSeq(data)
				if prev, exists := bestSeq[lpn]; exists && seq <= prev {
					continue
				}
				// Update re-points the LPN, invalidating any older copy the
				// scan found earlier.
				fresh.Update(lpn, g.PPNOf(addr))
				bestSeq[lpn] = seq
			}
		}
		if chipNow > end {
			end = chipNow
		}
	}
	rep.End = end

	// Compare against the in-RAM table (when it survived) for diagnostics.
	for lpn := LPN(0); int64(lpn) < k.LogicalPages(); lpn++ {
		oldPPN, oldOK := old.Lookup(lpn)
		newPPN, newOK := fresh.Lookup(lpn)
		if oldOK != newOK || (oldOK && oldPPN != newPPN) {
			rep.Mismatches++
		}
	}
	rep.Mapped = fresh.Mapped()
	// SetMapper (not a bare assignment) rewires the victim-index hook and
	// re-buckets every pool against the fresh table's valid counts.
	k.SetMapper(fresh)
	return rep, nil
}

// tokenSeq extracts the global sequence number from a payload token.
func tokenSeq(data []byte) uint64 {
	if len(data) < 16 {
		return 0
	}
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(data[8+i]) << (8 * i)
	}
	return v
}
