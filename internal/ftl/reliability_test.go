package ftl

import (
	"errors"
	"testing"

	"flexftl/internal/core"
	"flexftl/internal/nand"
	"flexftl/internal/rel"
	"flexftl/internal/sim"
)

// relTestKernel builds a registry-equivalent kernel over a device carrying
// the default reliability model. policy == nil is the detect-only
// configuration (the device classifies reads, the kernel never responds).
func relTestKernel(t *testing.T, scheme string, policy *RelPolicy) *Kernel {
	t.Helper()
	rules := core.FPS
	if scheme == "flexFTL" {
		rules = core.RPS
	}
	rc := rel.DefaultConfig(1)
	dev, err := nand.NewDevice(nand.Config{
		Geometry: nand.TestGeometry(), Timing: nand.DefaultTiming(), Rules: rules,
		Reliability: &rc,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Reliability = policy
	var k *Kernel
	switch scheme {
	case "flexFTL":
		k, err = NewFlexFTL(dev, cfg, DefaultFlexParams())
	case "pageFTL":
		k, err = NewPageFTL(dev, cfg)
	default:
		t.Fatalf("unknown scheme %q", scheme)
	}
	if err != nil {
		t.Fatal(err)
	}
	return k
}

// writeLPNs writes LPNs [0,n) sequentially and returns the reached time.
func writeLPNs(t *testing.T, k *Kernel, n int) sim.Time {
	t.Helper()
	now := sim.Time(0)
	for lpn := 0; lpn < n; lpn++ {
		done, err := k.Write(LPN(lpn), now, 0.5)
		if err != nil {
			t.Fatalf("write LPN %d: %v", lpn, err)
		}
		now = done
	}
	return now
}

func TestRelPolicyValidate(t *testing.T) {
	bad := []RelPolicy{
		{TargetPageFailure: 0, RefreshFraction: 0.6, RetireFraction: 0.9},
		{TargetPageFailure: 1, RefreshFraction: 0.6, RetireFraction: 0.9},
		{TargetPageFailure: 1e-4, RefreshFraction: 0, RetireFraction: 0.9},
		{TargetPageFailure: 1e-4, RefreshFraction: 1.1, RetireFraction: 0.9},
		{TargetPageFailure: 1e-4, RefreshFraction: 0.6, RetireFraction: 0},
		{TargetPageFailure: 1e-4, RefreshFraction: 0.9, RetireFraction: 0.6},
		{TargetPageFailure: 1e-4, RefreshFraction: 0.6, RetireFraction: 0.9, ScrubReadsPerIdle: -1},
	}
	for i, p := range bad {
		p := p
		if err := p.Validate(); err == nil {
			t.Errorf("policy %d (%+v) validated", i, p)
		}
	}
	if err := DefaultRelPolicy().Validate(); err != nil {
		t.Errorf("default policy rejected: %v", err)
	}
}

// TestRelPolicyNeedsModel: configuring kernel responses on a model-less
// device must fail at construction, not silently act on zero BERs.
func TestRelPolicyNeedsModel(t *testing.T) {
	dev, err := nand.NewDevice(nand.Config{
		Geometry: nand.TestGeometry(), Timing: nand.DefaultTiming(), Rules: core.FPS,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Reliability = DefaultRelPolicy()
	if _, err := NewPageFTL(dev, cfg); err == nil {
		t.Fatal("kernel with reliability policy built over a device without a model")
	}
}

// TestHostReadRebuildFromParity: on a parity-backed scheme, a page pinned
// ECC-uncorrectable whose block parity is still live is rebuilt transparently
// on the host read — the read succeeds, returns the acknowledged payload, and
// counts as an ECC rebuild, not a loss.
func TestHostReadRebuildFromParity(t *testing.T) {
	k := relTestKernel(t, "flexFTL", DefaultRelPolicy())
	g := k.Dev.Geometry()
	// Enough writes to complete several blocks' fast phases (parity live)
	// without the slow phase finishing behind them.
	n := g.Chips() * g.LSBPagesPerBlock() * 2
	now := writeLPNs(t, k, n)

	rebuilt := false
	for lpn := n - 1; lpn >= 0 && !rebuilt; lpn-- {
		ppn, ok := k.Map.Lookup(LPN(lpn))
		if !ok {
			t.Fatalf("LPN %d unmapped after write", lpn)
		}
		addr := g.AddrOfPPN(ppn)
		if addr.Page.Type != core.LSB {
			continue
		}
		if err := k.Dev.MarkLost(addr); err != nil {
			t.Fatal(err)
		}
		done, err := k.Read(LPN(lpn), now)
		if err != nil {
			// This stripe's parity was already recycled — a detected loss,
			// allowed; try an earlier LPN.
			if !errors.Is(err, rel.ErrUncorrectable) {
				t.Fatalf("read of lost LPN %d: %v", lpn, err)
			}
			continue
		}
		if got, ok := TokenLPN(k.Buf.Data); !ok || got != LPN(lpn) {
			t.Fatalf("rebuilt read of LPN %d returned token for %d (ok=%v)", lpn, got, ok)
		}
		if k.St.ECCRebuilds == 0 {
			t.Fatal("successful read of a lost page did not count as a rebuild")
		}
		now = done
		rebuilt = true
	}
	if !rebuilt {
		t.Fatal("no lost LSB page could be rebuilt from parity (refs never live?)")
	}
}

// TestDetectOnlyStickyLoss: without parity (and without responses), an
// uncorrectable page fails loudly — and keeps failing on every later read
// (the loss may never be masked by per-read model variance).
func TestDetectOnlyStickyLoss(t *testing.T) {
	k := relTestKernel(t, "pageFTL", nil)
	g := k.Dev.Geometry()
	n := g.PagesPerBlock()
	now := writeLPNs(t, k, n)

	lpn := LPN(0)
	ppn, ok := k.Map.Lookup(lpn)
	if !ok {
		t.Fatal("LPN 0 unmapped")
	}
	if err := k.Dev.MarkLost(g.AddrOfPPN(ppn)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		_, err := k.Read(lpn, now)
		if !errors.Is(err, rel.ErrUncorrectable) {
			t.Fatalf("read %d of lost page: %v, want rel.ErrUncorrectable", i, err)
		}
	}
	if k.St.UncorrectableReads != 3 {
		t.Errorf("UncorrectableReads = %d, want 3", k.St.UncorrectableReads)
	}
	// The mapping must survive: the loss is reported per read, not silently
	// converted into an unmapped page.
	if _, ok := k.Map.Lookup(lpn); !ok {
		t.Error("lost LPN dropped from the mapping table")
	}
}

// TestGCRelocatesLostPage: garbage collection of a block holding an
// unrepairable page carries the loss along — the relocation target is pinned
// uncorrectable too, so later host reads still detect it, and the event is
// counted as a GC read loss.
func TestGCRelocatesLostPage(t *testing.T) {
	k := relTestKernel(t, "pageFTL", nil)
	g := k.Dev.Geometry()
	// Fill a few blocks so at least one is on a full list.
	n := g.PagesPerBlock() * 4
	now := writeLPNs(t, k, n)

	var lpn LPN = -1
	var victim nand.BlockAddr
	for l := 0; l < n; l++ {
		ppn, ok := k.Map.Lookup(LPN(l))
		if !ok {
			continue
		}
		addr := g.AddrOfPPN(ppn)
		if k.Pools[addr.Chip].IsFull(addr.Block) {
			lpn, victim = LPN(l), addr.BlockAddr
			if err := k.Dev.MarkLost(addr); err != nil {
				t.Fatal(err)
			}
			break
		}
	}
	if lpn < 0 {
		t.Fatal("no written LPN landed in a full block")
	}
	if _, err := k.CollectVictim(victim.Chip, victim.Block, now, k.gcAlloc); err != nil {
		t.Fatalf("collect victim with a lost page: %v", err)
	}
	if k.St.GCReadLosses != 1 {
		t.Errorf("GCReadLosses = %d, want 1", k.St.GCReadLosses)
	}
	newPPN, ok := k.Map.Lookup(lpn)
	if !ok {
		t.Fatal("lost LPN unmapped after GC relocation")
	}
	if g.AddrOfPPN(newPPN).BlockAddr == victim {
		t.Fatal("lost LPN still maps into the erased victim")
	}
	if _, err := k.Read(lpn, now+sim.Second); !errors.Is(err, rel.ErrUncorrectable) {
		t.Fatalf("read of relocated lost page: %v, want rel.ErrUncorrectable", err)
	}
}

// TestMaybeRetire: a block whose post-erase BER sits over the retire line
// leaves service; a lightly worn block does not.
func TestMaybeRetire(t *testing.T) {
	k := relTestKernel(t, "pageFTL", DefaultRelPolicy())
	light, ok := k.Pools[0].PopFree()
	if !ok {
		t.Fatal("no free block")
	}
	heavy, ok := k.Pools[0].PopFree()
	if !ok {
		t.Fatal("no free block")
	}
	wear := func(blk, cycles int) {
		for i := 0; i < cycles; i++ {
			if _, err := k.Dev.Erase(nand.BlockAddr{Chip: 0, Block: blk}, 0); err != nil {
				t.Fatal(err)
			}
		}
	}
	wear(light, 1000)
	wear(heavy, 12000)
	if k.maybeRetire(0, light) {
		t.Error("1K-cycle block retired")
	}
	if !k.maybeRetire(0, heavy) {
		t.Error("12K-cycle block stayed in service")
	}
	if k.St.RetiredBlocks != 1 {
		t.Errorf("RetiredBlocks = %d, want 1", k.St.RetiredBlocks)
	}
	a := nand.PageAddr{BlockAddr: nand.BlockAddr{Chip: 0, Block: heavy}, Page: core.Page{WL: 0, Type: core.LSB}}
	if _, err := k.Dev.Program(a, []byte("x"), nil, 0); !errors.Is(err, nand.ErrBadBlock) {
		t.Errorf("program on retired block: %v, want ErrBadBlock", err)
	}
}

// TestCleanReadZeroAllocs guards the hot path: a clean host read with the
// reliability model mounted must not allocate.
func TestCleanReadZeroAllocs(t *testing.T) {
	k := relTestKernel(t, "pageFTL", DefaultRelPolicy())
	writeLPNs(t, k, 4)
	now := sim.Time(0)
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := k.Read(LPN(1), now); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("clean read allocates %.1f times per op, want 0", allocs)
	}
}
