package ftl

import (
	"errors"
	"fmt"

	"flexftl/internal/nand"
	"flexftl/internal/obs"
	"flexftl/internal/rel"
	"flexftl/internal/sim"
)

// PickNeediestVictim chooses, across all chips, the chip with the fewest
// free blocks that still has a GC candidate, and that chip's greedy victim
// (most invalid pages).
func PickNeediestVictim(b *Base) (chip, victim int, ok bool) {
	bestChip, bestFree := -1, int(^uint(0)>>1)
	bestVictim := -1
	for c, pool := range b.Pools {
		v, has := pool.PickVictim()
		if !has {
			continue
		}
		if pool.FreeCount() < bestFree {
			bestChip, bestFree, bestVictim = c, pool.FreeCount(), v
		}
	}
	if bestChip == -1 {
		return 0, 0, false
	}
	return bestChip, bestVictim, true
}

// GCPageCopyCost is the virtual-time cost of relocating one valid page
// during GC: a read, two bus transfers (out and back in), and a
// pessimistic MSB program. EstimateGCCost and RunBackgroundGC both budget
// from this single definition so the two cannot drift.
func GCPageCopyCost(t nand.Timing) sim.Time {
	return t.Read + 2*t.BusXfer + t.ProgMSB
}

// EstimateGCCost upper-bounds the virtual-time cost of collecting a victim
// with the given valid-page count: each copy is a read plus (pessimistically)
// an MSB program, plus the final erase. Foreground paths use it for
// accounting; background GC is incremental and does not need it.
func EstimateGCCost(t nand.Timing, validPages int) sim.Time {
	return sim.Time(validPages)*GCPageCopyCost(t) + t.Erase
}

// bgVictim tracks a background-GC victim across idle windows, so collection
// can proceed incrementally: real idle gaps are far shorter than a full
// victim collection, and an all-or-nothing policy would starve background GC
// entirely (pushing every reclaim into the foreground).
type bgVictim struct {
	chip    int
	blk     int
	nextIdx int // resume point for the valid-page scan (pages only ever go invalid)
	active  bool
}

// RunBackgroundGC incrementally collects victims during [now, until):
// it resumes any in-progress victim, relocating one valid page at a time
// through alloc, erasing and freeing the block when it empties, and starts a
// new victim (chosen by PickNeediestVictim) while shouldRun() holds. It
// returns the virtual time reached.
func (b *Base) RunBackgroundGC(now, until sim.Time, shouldRun func() bool, alloc AllocFunc) sim.Time {
	prevCause := b.Dev.SetCause(obs.CauseGC)
	defer b.Dev.SetCause(prevCause)
	t := b.Dev.Timing()
	perPage := GCPageCopyCost(t)
	g := b.Dev.Geometry()
	perBlock := g.PagesPerBlock()
	if b.Obs != nil && b.bg.active {
		b.Obs.Instant(obs.KindBGCResume, int32(b.bg.chip), now, int64(b.bg.blk), int64(b.bg.nextIdx))
	}
	for now < until {
		if !b.bg.active {
			if !shouldRun() {
				return now
			}
			chip, victim, ok := PickNeediestVictim(b)
			if !ok {
				return now
			}
			b.Pools[chip].TakeFull(victim)
			b.bg = bgVictim{chip: chip, blk: victim, active: true}
			b.St.BackgroundGCs++
			b.Obs.Instant(obs.KindBGCStart, int32(chip), now, int64(victim), int64(b.Pools[chip].FreeCount()))
		}
		addr := nand.BlockAddr{Chip: b.bg.chip, Block: b.bg.blk}
		base := nand.PPN(int64(b.Map.FlatBlock(addr)) * int64(perBlock))
		// Find the next still-valid page from the resume cursor.
		lpn := LPN(-1)
		var ppn nand.PPN
		for ; b.bg.nextIdx < perBlock; b.bg.nextIdx++ {
			if l, ok := b.Map.LPNAt(base + nand.PPN(b.bg.nextIdx)); ok {
				lpn, ppn = l, base+nand.PPN(b.bg.nextIdx)
				break
			}
		}
		if lpn == -1 {
			// Victim fully relocated (or invalidated): erase and free. The
			// erase is allowed to overshoot the window slightly; it cannot
			// be split. A worn-out victim retires instead of freeing.
			done, err := b.Dev.Erase(addr, now)
			if err != nil {
				if errors.Is(err, nand.ErrBadBlock) {
					b.St.RetiredBlocks++
				}
				b.bg = bgVictim{}
				return now
			}
			b.St.Erases++
			if !b.maybeRetire(b.bg.chip, b.bg.blk) {
				b.Pools[b.bg.chip].PushFree(b.bg.blk)
			}
			b.Obs.Instant(obs.KindBGCFinish, int32(b.bg.chip), now, int64(b.bg.blk), int64(b.Pools[b.bg.chip].FreeCount()))
			b.bg = bgVictim{}
			now = done
			continue
		}
		if now+perPage > until {
			return now
		}
		pa := b.Dev.Geometry().AddrOfPPN(ppn)
		tRead, err := b.Dev.ReadInto(pa, &b.Buf, now)
		if err != nil {
			if errors.Is(err, rel.ErrUncorrectable) {
				// ECC loss on a victim page: rebuild or relocate a pinned
				// placeholder (see collectVictim) and keep collecting.
				now = b.relocateLost(lpn, pa, tRead)
			} else {
				// Unreadable victim page (e.g. injected corruption): abandon
				// the victim but return it to the candidate list so its valid
				// pages are not leaked.
				b.Pools[b.bg.chip].PushFull(b.bg.blk)
				b.bg = bgVictim{}
				return now
			}
		} else {
			now = tRead
		}
		now, err = alloc(b.bg.chip, lpn, b.Buf.Data, b.Buf.Spare, now)
		if err != nil {
			// A relocation failure mid-victim would leave FTL block state
			// inconsistent; that is an allocator invariant violation, not a
			// recoverable condition.
			panic(fmt.Sprintf("ftl: background GC relocation of LPN %d failed: %v", lpn, err))
		}
		b.St.GCCopies++
		b.markRelocatedLoss(lpn)
		b.bg.nextIdx++
	}
	return now
}

// BackgroundVictimActive reports whether a background victim is mid-collection
// (tests and invariants).
func (b *Base) BackgroundVictimActive() bool { return b.bg.active }
