package ftl

import (
	"encoding/binary"
	"errors"
	"fmt"

	"flexftl/internal/nand"
	"flexftl/internal/obs"
	"flexftl/internal/rel"
	"flexftl/internal/sim"
)

// ErrUnmapped is returned by reads of logical pages that were never written.
var ErrUnmapped = errors.New("ftl: read of unmapped LPN")

// Base carries the state and helpers shared by every MLC kernel
// configuration: device handle, mapping table, per-chip pools, counters,
// payload token generation and the common GC engine.
type Base struct {
	Dev   *nand.Device
	Map   *Mapper
	Cfg   Config
	Pools []*FreePool
	St    Stats
	// Obs is the observability recorder threaded through the stack; nil
	// (the default) disables all emission at zero cost.
	Obs *obs.Recorder
	// Buf is the reusable page buffer for read paths that either discard
	// the payload or hand it to Program (which copies) before the next
	// read: host reads, GC relocation, recovery rescans. Sharing one
	// buffer is safe because the FTLs are single-threaded per instance
	// and no alloc callback performs a nested device read.
	Buf nand.PageBuf

	// Reliability-response state (zero when Cfg.Reliability is nil). The
	// thresholds are raw-BER lines derived from the device model's ECC
	// budget in initReliability; the cursors persist across idle windows so
	// scrubbing and refresh rotate over the whole device.
	relEnabled     bool
	relBudget      float64
	relRefreshBER  float64
	relRetireBER   float64
	scrubCursor    int64
	refreshCursor  int
	relLostPending bool // a GC relocation in flight carries a placeholder for lost data
	// repairRead attempts an in-place parity rebuild of an ECC-lost page,
	// leaving the payload in Buf on success. Set by NewKernel when the
	// mounted backup strategy can rebuild (blockParity) and the reliability
	// policy is on; nil otherwise. It takes the Base explicitly — shard
	// clones copy Base by value, and a closure over the original kernel
	// would repair into the wrong buffer and stats.
	repairRead func(b *Base, lpn LPN, lost nand.PageAddr, now sim.Time) (sim.Time, bool)

	seq  int64    // global write sequence number (payload uniqueness)
	rr   int      // round-robin chip cursor for host writes
	inGC bool     // guards against GC re-entry through alloc callbacks
	bg   bgVictim // in-progress background-GC victim (survives idle windows)
	hyst bool     // background-GC hysteresis latch
	// shardExec marks a per-channel shard clone of the epoch-sharded run
	// engine (shard.go): the adaptive quota freezes (the barrier replays it)
	// and GC must be unreachable (the planner's free-block margin guarantees
	// it; CollectVictim panics if the guarantee breaks).
	shardExec bool

	// Blame counters (nil without a recorder): host-visible stall charged to
	// foreground GC, backup-program completion extension, and the two-phase
	// reprogram penalty. Prefetched in SetRecorder so the hot path never
	// touches the registry maps.
	ctrBlameGC        *obs.Counter
	ctrBlameBackup    *obs.Counter
	ctrBlameReprogram *obs.Counter
	// reprogPenalty is the extra latency of a slow (MSB) program over a fast
	// (LSB) one, charged per host MSB data write.
	reprogPenalty int64

	// Scratch buffers for the per-write payload helpers and the GC
	// valid-page scan. Safe for the same reason Buf is: the FTLs are
	// single-threaded and Device.Program copies payload and spare before
	// the next call can overwrite them.
	tok  [TokenSize]byte
	sp   [8]byte
	ppns []nand.PPN
}

// NewBase wires a Base for the device under the config.
func NewBase(dev *nand.Device, cfg Config) (*Base, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	g := dev.Geometry()
	logical := cfg.LogicalPages(g)
	if logical <= 0 {
		return nil, fmt.Errorf("ftl: geometry too small for over-provisioning %v", cfg.OPFraction)
	}
	b := &Base{
		Dev:           dev,
		Map:           NewMapper(g, logical),
		Cfg:           cfg,
		Pools:         make([]*FreePool, g.Chips()),
		reprogPenalty: int64(dev.Timing().ProgMSB - dev.Timing().ProgLSB),
	}
	for c := range b.Pools {
		b.Pools[c] = NewFreePool(c, g.BlocksPerChip)
		b.Pools[c].Policy = cfg.GC
	}
	b.wireVictimIndex()
	if cfg.Reliability != nil {
		if err := b.initReliability(cfg.Reliability); err != nil {
			return nil, err
		}
	}
	return b, nil
}

// wireVictimIndex binds every pool's victim index to the current mapper's
// valid counts and routes the mapper's change notifications back to the
// owning pool. The bind closures read b.Map on every call, so they survive a
// mapper swap (SetMapper) without rewiring.
func (b *Base) wireVictimIndex() {
	g := b.Dev.Geometry()
	bpc := g.BlocksPerChip
	for c, p := range b.Pools {
		chip := c
		p.Bind(g.PagesPerBlock(), func(blk int) int {
			return b.Map.ValidCount(nand.BlockAddr{Chip: chip, Block: blk})
		})
	}
	b.Map.SetValidHook(func(flat int) {
		b.Pools[flat/bpc].NoteValidChange(flat % bpc)
	})
}

// SetMapper swaps in a rebuilt mapping table (flash-scan rebuild), rewiring
// the valid-count hook and reindexing every pool's victim buckets against
// the new counts.
func (b *Base) SetMapper(m *Mapper) {
	b.Map = m
	b.wireVictimIndex()
}

// SetVictimReference switches every pool between the indexed victim picker
// and the retained reference linear scan (A/B determinism tests).
func (b *Base) SetVictimReference(on bool) {
	for _, p := range b.Pools {
		p.Reference = on
	}
}

// Device returns the NAND device.
func (b *Base) Device() *nand.Device { return b.Dev }

// SetRecorder attaches an observability recorder to the FTL and its device.
// Every FTL embedding Base inherits it, so the runner can instrument any
// scheme uniformly.
func (b *Base) SetRecorder(r *obs.Recorder) {
	b.Obs = r
	b.Dev.SetRecorder(r)
	reg := r.Registry()
	b.ctrBlameGC = reg.Counter(obs.BlameCounterName(obs.CauseGC))
	b.ctrBlameBackup = reg.Counter(obs.BlameCounterName(obs.CauseBackup))
	b.ctrBlameReprogram = reg.Counter(obs.BlameCounterName(obs.CauseReprogram))
}

// WearSpread returns the device's wear imbalance (Max/Mean erase count; 1.0
// is perfectly even), the sampler's erase-count-spread stream.
func (b *Base) WearSpread() float64 { return b.Dev.Wear().Imbalance }

// EraseCountOf returns one block's lifetime erase count (the wear-aware
// placement's block-choice input).
func (b *Base) EraseCountOf(chip, blk int) int {
	return b.Dev.EraseCount(nand.BlockAddr{Chip: chip, Block: blk})
}

// Stats returns the counter snapshot.
func (b *Base) Stats() Stats { return b.St }

// ResetCounters zeroes the statistics (used after a warm-up/prefill phase so
// measurements cover steady state only).
func (b *Base) ResetCounters() { b.St = Stats{} }

// LogicalPages returns the host-visible page count.
func (b *Base) LogicalPages() int64 { return b.Map.LogicalPages() }

// NextChip advances the round-robin cursor for host write placement.
func (b *Base) NextChip() int {
	c := b.rr
	b.rr = (b.rr + 1) % b.Dev.Geometry().Chips()
	return c
}

// TokenSize is the payload size of the deterministic page tokens the FTLs
// write: 8 bytes of LPN + 8 bytes of global sequence number. Real 4 KB
// payloads carry no additional information for the simulation, so pages
// store just the token — the parity algebra is unaffected (XOR over tokens
// is XOR over the zero-padded pages).
const TokenSize = 16

// Token builds the payload for a host write, advancing the sequence number.
// The returned slice is a reusable scratch buffer, valid until the next
// Token call; Device.Program copies it, so the write paths never retain it.
func (b *Base) Token(lpn LPN) []byte {
	b.seq++
	binary.LittleEndian.PutUint64(b.tok[0:8], uint64(lpn))
	binary.LittleEndian.PutUint64(b.tok[8:16], uint64(b.seq))
	return b.tok[:]
}

// Spare is the scratch-buffer variant of SpareForLPN for the per-write hot
// path; valid until the next Spare call.
func (b *Base) Spare(lpn LPN) []byte {
	binary.LittleEndian.PutUint64(b.sp[:], uint64(lpn))
	return b.sp[:]
}

// TokenLPN extracts the LPN from a token payload.
func TokenLPN(data []byte) (LPN, bool) {
	if len(data) < 8 {
		return -1, false
	}
	return LPN(binary.LittleEndian.Uint64(data[0:8])), true
}

// TokenSeq extracts the global sequence number from a token payload (0 for
// short payloads). A crash-campaign verifier compares it against the floor
// recorded per acknowledged write — see Seq.
func TokenSeq(data []byte) uint64 { return tokenSeq(data) }

// SpareForLPN encodes the reverse-map entry programmed into a data page's
// spare area.
func SpareForLPN(lpn LPN) []byte {
	buf := make([]byte, 8)
	binary.LittleEndian.PutUint64(buf, uint64(lpn))
	return buf
}

// LPNFromSpare decodes SpareForLPN.
func LPNFromSpare(spare []byte) (LPN, bool) {
	if len(spare) < 8 {
		return -1, false
	}
	return LPN(binary.LittleEndian.Uint64(spare[:8])), true
}

// MappingHash fingerprints the current mapping state (see Mapper.StateHash).
func (b *Base) MappingHash() uint64 { return b.Map.StateHash() }

// Seq returns the global write sequence number of the most recently issued
// token. A crash-campaign shadow model records it per acknowledged write:
// any later copy of the same LPN (a GC relocation under retokenization)
// carries a sequence at least this high, so a read-back below the recorded
// floor exposes a stale-mapping bug.
func (b *Base) Seq() int64 { return b.seq }

// BackgroundVictim reports the in-progress background-GC victim (taken off
// the full list, surviving across idle windows), for block-accounting
// checks.
func (b *Base) BackgroundVictim() (chip, blk int, ok bool) {
	if !b.bg.active {
		return 0, 0, false
	}
	return b.bg.chip, b.bg.blk, true
}

// TotalFreeBlocks sums the free lists over all chips.
func (b *Base) TotalFreeBlocks() int {
	total := 0
	for _, p := range b.Pools {
		total += p.FreeCount()
	}
	return total
}

// BelowGCThreshold reports whether free space has dropped under the
// background-GC trigger (10% of total blocks by default).
func (b *Base) BelowGCThreshold() bool {
	return float64(b.TotalFreeBlocks()) < b.Cfg.GCFreeFraction*float64(b.Dev.Geometry().TotalBlocks())
}

// BGCWanted is the hysteretic background-GC condition: collection starts
// when free space drops under the trigger threshold and keeps going until a
// 1.5x cushion is rebuilt, so a single write burst cannot immediately push
// the system back into foreground reclaim.
func (b *Base) BGCWanted() bool {
	total := float64(b.Dev.Geometry().TotalBlocks())
	free := float64(b.TotalFreeBlocks())
	if free < b.Cfg.GCFreeFraction*total {
		b.hyst = true
	} else if free >= 1.5*b.Cfg.GCFreeFraction*total {
		b.hyst = false
	}
	return b.hyst
}

// AllocFunc programs one relocated page during GC using the FTL's own page
// placement policy. It must update the mapping (Mapper.Update) itself and
// must not recurse into GC — the engine guarantees a free reserve.
type AllocFunc func(chip int, lpn LPN, data, spare []byte, now sim.Time) (sim.Time, error)

// CollectVictim relocates every valid page of the victim block through
// alloc, erases it, and returns it to the chip's free pool. The victim must
// be on the chip's full list. It returns the completion time of the erase.
func (b *Base) CollectVictim(chip, victim int, now sim.Time, alloc AllocFunc) (sim.Time, error) {
	return b.collectVictim(chip, victim, now, alloc, obs.CauseGC)
}

// collectVictim is CollectVictim under an explicit attribution cause — the
// refresh scan reuses the whole collection machinery but charges its media
// work to scrub, not GC.
func (b *Base) collectVictim(chip, victim int, now sim.Time, alloc AllocFunc, cause obs.Cause) (sim.Time, error) {
	if b.shardExec {
		// The epoch planner's per-chip free margin must make foreground GC
		// unreachable inside a shard; reaching here is a planner bug, not a
		// recoverable condition.
		panic(fmt.Sprintf("ftl: GC on chip %d during shard execution", chip))
	}
	if b.inGC {
		return now, fmt.Errorf("ftl: re-entrant GC on chip %d", chip)
	}
	b.inGC = true
	prevCause := b.Dev.SetCause(cause)
	defer func() {
		b.inGC = false
		b.Dev.SetCause(prevCause)
	}()
	gcStart, copiesBefore := now, b.St.GCCopies

	addr := nand.BlockAddr{Chip: chip, Block: victim}
	b.Pools[chip].TakeFull(victim)
	g := b.Dev.Geometry()
	// The scratch reuse is safe against the mapping updates alloc performs:
	// relocation only invalidates pages of this block after copying them,
	// never adds pages to it, and the inGC guard rules out a nested scan.
	b.ppns = b.Map.AppendValidPages(addr, b.ppns[:0])
	for _, ppn := range b.ppns {
		lpn, ok := b.Map.LPNAt(ppn)
		if !ok {
			continue // invalidated by an earlier iteration (cannot happen for distinct LPNs)
		}
		pa := g.AddrOfPPN(ppn)
		t, err := b.Dev.ReadInto(pa, &b.Buf, now)
		if err != nil {
			if errors.Is(err, rel.ErrUncorrectable) {
				// ECC loss mid-relocation: rebuild from parity when covered,
				// otherwise relocate a placeholder token and pin the loss at
				// the new location — the LPN stays mapped so a later host
				// read fails (detected loss), never silently vanishes.
				now = b.relocateLost(lpn, pa, t)
			} else {
				// Abort the collection but keep the victim on the candidate
				// list — its remaining valid pages must not be leaked.
				b.Pools[chip].PushFull(victim)
				return now, fmt.Errorf("ftl: GC read %v: %w", pa, err)
			}
		} else {
			now = t
		}
		now, err = alloc(chip, lpn, b.Buf.Data, b.Buf.Spare, now)
		if err != nil {
			b.Pools[chip].PushFull(victim)
			return now, fmt.Errorf("ftl: GC relocation of LPN %d: %w", lpn, err)
		}
		b.St.GCCopies++
		b.markRelocatedLoss(lpn)
	}
	b.Map.ClearBlock(addr)
	done, err := b.Dev.Erase(addr, now)
	if err != nil {
		if errors.Is(err, nand.ErrBadBlock) {
			// Worn out: the block leaves service instead of returning to
			// the free pool; capacity shrinks by one block.
			b.St.RetiredBlocks++
			b.Obs.Span(obs.KindGCCollect, int32(chip), gcStart, now, int64(victim), b.St.GCCopies-copiesBefore)
			return now, nil
		}
		return now, err
	}
	b.St.Erases++
	if !b.maybeRetire(chip, victim) {
		b.Pools[chip].PushFree(victim)
	}
	b.Obs.Span(obs.KindGCCollect, int32(chip), gcStart, done, int64(victim), b.St.GCCopies-copiesBefore)
	return done, nil
}

// EraseAndFree erases a block that is already off all lists (e.g. a retired
// backup block) and returns it to the free pool. A worn-out block retires
// silently (capacity shrinks).
func (b *Base) EraseAndFree(chip, blk int, now sim.Time) (sim.Time, error) {
	done, err := b.Dev.Erase(nand.BlockAddr{Chip: chip, Block: blk}, now)
	if err != nil {
		if errors.Is(err, nand.ErrBadBlock) {
			b.St.RetiredBlocks++
			return now, nil
		}
		return now, err
	}
	b.St.Erases++
	if !b.maybeRetire(chip, blk) {
		b.Pools[chip].PushFree(blk)
	}
	return done, nil
}

// Trim invalidates a logical page — the host discard path shared by every
// FTL. Purely a mapping operation: the freed physical page becomes a GC
// opportunity. Completion is immediate (metadata only).
func (b *Base) Trim(lpn LPN, now sim.Time) (sim.Time, error) {
	if b.Map.Invalidate(lpn) {
		b.St.HostTrims++
	}
	return now, nil
}

// ReadLPN performs the shared host-read path. A read that fails the ECC
// retry ladder is rebuilt in place from parity when the page is covered (the
// payload lands in Buf exactly as on a clean read); an unrepairable loss
// pins the page and surfaces rel.ErrUncorrectable with the real completion
// time — the host paid the full ladder before learning the data is gone.
func (b *Base) ReadLPN(lpn LPN, now sim.Time) (sim.Time, error) {
	ppn, ok := b.Map.Lookup(lpn)
	if !ok {
		return now, fmt.Errorf("%w: %d", ErrUnmapped, lpn)
	}
	addr := b.Dev.Geometry().AddrOfPPN(ppn)
	done, err := b.Dev.ReadInto(addr, &b.Buf, now)
	if err != nil {
		if errors.Is(err, rel.ErrUncorrectable) {
			if b.repairRead != nil {
				if t, ok := b.repairRead(b, lpn, addr, done); ok {
					b.St.ECCRebuilds++
					b.St.HostReads++
					return t, nil
				}
			}
			b.St.UncorrectableReads++
			_ = b.Dev.MarkLost(addr)
			return done, fmt.Errorf("ftl: host read of LPN %d: %w", lpn, err)
		}
		return now, err
	}
	b.St.HostReads++
	return done, nil
}
