package ftl

import (
	"encoding/binary"
	"fmt"

	"flexftl/internal/core"
	"flexftl/internal/nand"
	"flexftl/internal/obs"
	"flexftl/internal/parity"
	"flexftl/internal/sim"
)

// BackupStrategy protects LSB data against the destructive paired-page MSB
// program under sudden power-off. The kernel calls afterLSB on every LSB data
// program; the two-phase order policy additionally drives the fast-block
// life-cycle hooks (onFastOpen/onFastComplete/onSlowComplete) that the
// per-block parity scheme needs. The interface is sealed — implementations
// come from NoBackupStrategy / PairParityBackup / BlockParityBackup.
type BackupStrategy interface {
	init(k *Kernel) error
	// extraReserve is how many free blocks beyond the GC minimum the
	// foreground collector must keep available for the backup writer.
	extraReserve() int
	// afterLSB observes one completed LSB data program on the chip's given
	// placement stream and may emit backup programs, returning the
	// (possibly extended) completion time.
	afterLSB(k *Kernel, chip, stream int, data []byte, done sim.Time) (sim.Time, error)
	// onFastOpen fires when a two-phase fast block opens on a stream.
	onFastOpen(k *Kernel, chip, stream int)
	// onFastComplete fires when a two-phase fast block fills (all LSB pages
	// written); the per-block parity scheme persists the accumulated parity
	// of that stream's block.
	onFastComplete(k *Kernel, chip, stream, fastBlk int, done sim.Time) (sim.Time, error)
	// onSlowComplete fires when a two-phase slow block finishes its MSB
	// phase, retiring any backup that protected it.
	onSlowComplete(k *Kernel, chip, blk int)
	// coversMSB reports whether the strategy's pre-backup makes a paired-page
	// MSB program power-safe at issue time: the pair parity is persisted
	// before the MSB program begins (the footnote-4 bound), so the order
	// policy may acknowledge the destructive window immediately. Strategies
	// returning false leave the window open until their own recovery story
	// (or nothing, for NoBackupStrategy) takes over.
	coversMSB() bool
	// shardPops bounds, from the chip's current backup-block state, the free
	// blocks the strategy can pop while the order policy serves lsbWrites
	// LSB data programs and completes fills fast blocks (the epoch planner's
	// R5 input; lsbWrites is an upper bound on the actual LSB share).
	shardPops(k *Kernel, chip, lsbWrites, fills int) int
}

// NoBackupStrategy returns the empty strategy: no pre-backup at all, the
// paper's no-sudden-power-off baseline (pageFTL).
func NoBackupStrategy() BackupStrategy { return noBackup{} }

type noBackup struct{}

func (noBackup) init(*Kernel) error { return nil }
func (noBackup) extraReserve() int  { return 0 }
func (noBackup) afterLSB(k *Kernel, chip, stream int, data []byte, done sim.Time) (sim.Time, error) {
	return done, nil
}
func (noBackup) onFastOpen(*Kernel, int, int) {}
func (noBackup) onFastComplete(k *Kernel, chip, stream, fastBlk int, done sim.Time) (sim.Time, error) {
	return done, nil
}
func (noBackup) onSlowComplete(*Kernel, int, int) {}
func (noBackup) coversMSB() bool                  { return false }
func (noBackup) shardPops(*Kernel, int, int, int) int {
	return 0
}

// PairParityBackup returns the adaptive paired-page pre-backup of Lee et al.
// (TCAD 2014): under FPS at most pairSize LSB pages can share one parity
// backup page before their paired MSB pages are programmed, so every
// pairSize-th LSB program emits one parity page to a per-chip backup block
// (parityFTL and rtfFTL use pairSize 2, the paper's footnote 4 bound).
func PairParityBackup(pairSize int) BackupStrategy {
	return &pairParity{pairSize: pairSize}
}

type pairParity struct {
	pairSize int
	order    []core.Page
	ring     []backupRing     // per chip
	pbuf     []*parity.Buffer // per chip: parity of the LSB pair in flight
	psnap    [][]byte         // per chip: scratch for parity snapshots (Program copies)
}

// backupRing is a two-deep rotation of backup blocks: parity pages go to the
// current block; when it fills, the previous one (whose parities have long
// been superseded by completed MSB programs) is erased and freed.
type backupRing struct {
	cur  int // -1 when none
	pos  int
	prev int // -1 when none
}

func (b *pairParity) init(k *Kernel) error {
	if b.pairSize < 1 {
		return fmt.Errorf("ftl: parity pair size %d < 1", b.pairSize)
	}
	if k.placement.streams() != 1 {
		// The pair accumulator assumes LSB programs arrive in one global
		// per-chip order; interleaved streams would pair LSBs whose MSB
		// windows open at unrelated times, voiding the footnote-4 bound.
		return fmt.Errorf("%s: pair-parity backup requires the single-stream placement", k.name)
	}
	g := k.Dev.Geometry()
	b.order = core.FPSOrder(g.WordLinesPerBlock)
	b.ring = make([]backupRing, g.Chips())
	b.pbuf = make([]*parity.Buffer, g.Chips())
	b.psnap = make([][]byte, g.Chips())
	for c := range b.ring {
		b.ring[c] = backupRing{cur: -1, prev: -1}
		// Pages carry TokenSize-byte payloads; the parity accumulator only
		// needs that width.
		b.pbuf[c] = parity.New(TokenSize)
	}
	return nil
}

// extraReserve keeps one block beyond the GC minimum: the backup ring can
// claim a block at any moment.
func (b *pairParity) extraReserve() int { return 1 }

func (b *pairParity) afterLSB(k *Kernel, chip, stream int, data []byte, done sim.Time) (sim.Time, error) {
	// Accumulate the pre-backup parity; every pairSize LSB pages emit one
	// parity page before their paired MSB programs begin.
	if err := b.pbuf[chip].Add(data); err != nil {
		return done, err
	}
	if b.pbuf[chip].Count() >= b.pairSize {
		var err error
		b.psnap[chip] = b.pbuf[chip].SnapshotInto(b.psnap[chip])
		done, err = b.writeBackup(k, chip, b.psnap[chip], done)
		if err != nil {
			return done, err
		}
		b.pbuf[chip].Reset()
	}
	return done, nil
}

// writeBackup programs one parity page into the chip's backup ring, rotating
// blocks as they fill.
func (b *pairParity) writeBackup(k *Kernel, chip int, page []byte, now sim.Time) (sim.Time, error) {
	ring := &b.ring[chip]
	if ring.cur == -1 {
		blk, ok := k.Pools[chip].PopFree()
		if !ok {
			return now, fmt.Errorf("%s: chip %d has no free block for backups", k.name, chip)
		}
		ring.cur, ring.pos = blk, 0
	}
	addr := nand.PageAddr{
		BlockAddr: nand.BlockAddr{Chip: chip, Block: ring.cur},
		Page:      b.order[ring.pos],
	}
	done, err := k.Dev.Program(addr, page, nil, now)
	if err != nil {
		return now, err
	}
	if addr.Page.Type == core.MSB {
		// A backup-ring MSB program is power-safe at issue: a cut here can
		// only destroy backup pages (the chip has one destructive window,
		// so every data page survives), and a parity page is needed only
		// when a data LSB it covers is destroyed — which the same cut
		// cannot also do. Without this ack the ring would leave windows
		// dangling that no recovery path ever closes.
		k.Dev.AckProgram(addr.BlockAddr)
	}
	k.St.BackupWrites++
	k.Obs.Instant(obs.KindBackup, int32(chip), now, int64(ring.cur), int64(ring.pos))
	ring.pos++
	if ring.pos == len(b.order) {
		// Rotate: recycle the previous backup block. Its newest parity is
		// a full backup-block's worth of word lines old, far beyond the
		// FPS paired-MSB window, so everything in it is stale.
		if ring.prev != -1 {
			done, err = k.EraseAndFree(chip, ring.prev, done)
			if err != nil {
				return done, err
			}
		}
		ring.prev, ring.cur = ring.cur, -1
	}
	return done, nil
}

func (b *pairParity) onFastOpen(*Kernel, int, int) {}
func (b *pairParity) onFastComplete(k *Kernel, chip, stream, fastBlk int, done sim.Time) (sim.Time, error) {
	return done, nil
}
func (b *pairParity) onSlowComplete(*Kernel, int, int) {}

// coversMSB: the pair's parity page is persisted before the paired MSB
// program starts (afterLSB emits it every pairSize LSBs, the footnote-4
// bound), so the destructive window is power-safe at issue time.
func (b *pairParity) coversMSB() bool { return true }

// shardPops: lsbWrites LSB programs emit at most (pending+lsbWrites)/pairSize
// parity pages; the current backup block absorbs its remaining capacity, and
// each further block's worth of emissions pops one ring block.
func (b *pairParity) shardPops(k *Kernel, chip, lsbWrites, fills int) int {
	if lsbWrites <= 0 {
		return 0
	}
	emissions := (b.pbuf[chip].Count() + lsbWrites) / b.pairSize
	if emissions == 0 {
		return 0
	}
	room := 0
	if ring := &b.ring[chip]; ring.cur != -1 {
		room = len(b.order) - ring.pos
	}
	if emissions <= room {
		return 0
	}
	return 1 + (emissions-room-1)/len(b.order)
}

// BlockParityBackup returns the paper's per-block parity scheme (Section
// 3.3): one XOR parity page protects all LSB pages of a two-phase fast
// block, written once when the fast block fills, invalidated when its slow
// phase completes. It requires the two-phase order policy.
func BlockParityBackup() BackupStrategy { return &blockParity{} }

// parityRef locates the parity backup page protecting a fast block.
type parityRef struct {
	backupBlk int // in-chip block index of the backup block
	page      int // LSB word-line index within the backup block
}

// retiredBackup records one retired parity backup block together with how
// many parity pages were actually written into it. Blocks normally retire
// full, but a crash-time seal (RebuildParityRefs) retires the current block
// at whatever fill it reached; recovery scans must not read past the fill —
// phantom reads of never-programmed pages would inflate PagesRead and the
// reboot-time estimate for no information.
type retiredBackup struct {
	blk  int
	fill int // programmed LSB parity pages: word lines [0, fill)
}

// backupState manages a chip's parity backup blocks: parity pages are
// written to LSB pages only (footnote 2 of the paper — legal under RPS),
// and a backup block is recycled once every parity page in it has been
// invalidated by its slow block completing.
type backupState struct {
	cur     int             // current backup block, -1 when none
	pos     int             // next LSB word line in cur
	live    map[int]int     // backup block -> count of still-needed parity pages
	retired []retiredBackup // filled (or sealed) backup blocks awaiting live==0
}

type blockParity struct {
	// pbuf accumulates each stream's open fast block's LSB parity,
	// [chip][stream] — streams fill fast blocks independently, so each needs
	// its own accumulator. The backup blocks themselves (backupState) stay
	// per chip: parity pages from all streams share one backup block.
	pbuf   [][]*parity.Buffer
	backup []backupState // per chip
	// refs maps flat fast-block index -> parity location, as a flat slice
	// (backupBlk -1 = none) so channel shards of one run can write disjoint
	// chip-owned entries without sharing a map's internals.
	refs  []parityRef
	psnap [][][]byte // [chip][stream]: scratch for parity snapshots (Program copies)
}

func (b *blockParity) init(k *Kernel) error {
	g := k.Dev.Geometry()
	streams := k.placement.streams()
	b.pbuf = make([][]*parity.Buffer, g.Chips())
	b.backup = make([]backupState, g.Chips())
	b.psnap = make([][][]byte, g.Chips())
	b.resetRefs(g.TotalBlocks())
	for c := range b.backup {
		b.pbuf[c] = make([]*parity.Buffer, streams)
		for s := range b.pbuf[c] {
			b.pbuf[c][s] = parity.New(TokenSize)
		}
		b.psnap[c] = make([][]byte, streams)
		b.backup[c] = backupState{cur: -1, live: make(map[int]int)}
	}
	return nil
}

// resetRefs clears the parity-ref table to "no parity" for every block.
func (b *blockParity) resetRefs(blocks int) {
	if len(b.refs) != blocks {
		b.refs = make([]parityRef, blocks)
	}
	for i := range b.refs {
		b.refs[i] = parityRef{backupBlk: -1}
	}
}

// refLive counts blocks with a live parity reference.
func (b *blockParity) refLive() int {
	n := 0
	for i := range b.refs {
		if b.refs[i].backupBlk != -1 {
			n++
		}
	}
	return n
}

// extraReserve keeps one block for the parity-backup writer (the two-phase
// foreground collector folds this into its own emergency level).
func (b *blockParity) extraReserve() int { return 1 }

func (b *blockParity) afterLSB(k *Kernel, chip, stream int, data []byte, done sim.Time) (sim.Time, error) {
	if err := b.pbuf[chip][stream].Add(data); err != nil {
		return done, err
	}
	return done, nil
}

func (b *blockParity) onFastOpen(k *Kernel, chip, stream int) { b.pbuf[chip][stream].Reset() }

func (b *blockParity) onFastComplete(k *Kernel, chip, stream, fastBlk int, done sim.Time) (sim.Time, error) {
	b.psnap[chip][stream] = b.pbuf[chip][stream].SnapshotInto(b.psnap[chip][stream])
	snapshot := b.psnap[chip][stream]
	b.pbuf[chip][stream].Reset()
	return b.writeBlockParity(k, chip, fastBlk, snapshot, done)
}

// writeBlockParity programs the accumulated parity page of a completed fast
// block into the chip's backup block, on an LSB page, with the protected
// block's number in the spare area (Figure 7(a)).
func (b *blockParity) writeBlockParity(k *Kernel, chip, fastBlk int, parityPage []byte, now sim.Time) (sim.Time, error) {
	bk := &b.backup[chip]
	if bk.cur == -1 {
		blk, ok := k.Pools[chip].PopFree()
		if !ok {
			return now, fmt.Errorf("%s: chip %d has no free block for parity backups", k.name, chip)
		}
		bk.cur, bk.pos = blk, 0
	}
	addr := nand.PageAddr{
		BlockAddr: nand.BlockAddr{Chip: chip, Block: bk.cur},
		Page:      core.Page{WL: bk.pos, Type: core.LSB},
	}
	done, err := k.Dev.Program(addr, parityPage, spareForBlock(fastBlk), now)
	if err != nil {
		return now, err
	}
	k.St.BackupWrites++
	k.Obs.Instant(obs.KindBackup, int32(chip), now, int64(fastBlk), int64(bk.cur))
	b.refs[k.Map.FlatBlock(nand.BlockAddr{Chip: chip, Block: fastBlk})] = parityRef{
		backupBlk: bk.cur,
		page:      bk.pos,
	}
	bk.live[bk.cur]++
	bk.pos++
	if bk.pos == k.Dev.Geometry().WordLinesPerBlock {
		// All LSB pages of the backup block used: retire it. It is erased
		// once every parity in it is invalidated.
		bk.retired = append(bk.retired, retiredBackup{blk: bk.cur, fill: bk.pos})
		bk.cur = -1
	}
	return done, nil
}

// onSlowComplete marks the parity page of a completed slow block stale and
// recycles retired backup blocks that no longer protect anything. Recycling
// happens lazily at the next opportunity the chip timeline offers (the
// caller's completion time is not extended — erase cost is charged through
// EraseAndFree at the chip-ready time after the MSB program that freed it).
func (b *blockParity) onSlowComplete(k *Kernel, chip, blk int) {
	flat := k.Map.FlatBlock(nand.BlockAddr{Chip: chip, Block: blk})
	ref := b.refs[flat]
	if ref.backupBlk == -1 {
		return
	}
	b.refs[flat] = parityRef{backupBlk: -1}
	b.backup[chip].live[ref.backupBlk]--
	b.recycleRetired(k, chip)
}

// recycleRetired erases retired backup blocks whose parities are all stale.
// The device serializes the erase after current chip work.
func (b *blockParity) recycleRetired(k *Kernel, chip int) {
	bk := &b.backup[chip]
	kept := bk.retired[:0]
	for _, r := range bk.retired {
		if bk.live[r.blk] == 0 {
			delete(bk.live, r.blk)
			if _, err := k.EraseAndFree(chip, r.blk, k.Dev.ChipReadyAt(chip)); err != nil {
				// An erase failure here means a retired-block accounting
				// bug; surface it loudly in tests.
				panic(fmt.Sprintf("%s: recycling backup block %d on chip %d: %v", k.name, r.blk, chip, err))
			}
			continue
		}
		kept = append(kept, r)
	}
	bk.retired = kept
}

// backupBlockSet returns the chip's backup blocks (current + retired) —
// the superblock metadata a real FTL persists.
func (b *blockParity) backupBlockSet(chip int) map[int]bool {
	set := make(map[int]bool)
	bk := &b.backup[chip]
	if bk.cur != -1 {
		set[bk.cur] = true
	}
	for _, r := range bk.retired {
		set[r.blk] = true
	}
	return set
}

// coversMSB: per-block parity protects LSB pages only; the destructive
// window of each MSB program stays open until its slow block completes
// (recover2po.go reconstructs the pair after a crash).
func (b *blockParity) coversMSB() bool { return false }

// shardPops: one parity page per completed fast block; the current backup
// block absorbs its remaining LSB capacity, and each further word-lines'
// worth of parities pops one backup block.
func (b *blockParity) shardPops(k *Kernel, chip, lsbWrites, fills int) int {
	if fills <= 0 {
		return 0
	}
	wl := k.Dev.Geometry().WordLinesPerBlock
	room := 0
	if bk := &b.backup[chip]; bk.cur != -1 {
		room = wl - bk.pos
	}
	if fills <= room {
		return 0
	}
	return 1 + (fills-room-1)/wl
}

// spareForBlock encodes the inverse mapping (backup page -> protected block)
// stored in the parity page's spare area.
func spareForBlock(blk int) []byte {
	buf := make([]byte, 8)
	binary.LittleEndian.PutUint64(buf, uint64(blk))
	return buf
}

// blockFromSpare decodes spareForBlock.
func blockFromSpare(spare []byte) (int, bool) {
	if len(spare) < 8 {
		return -1, false
	}
	return int(binary.LittleEndian.Uint64(spare[:8])), true
}
