package ftl

// writePredictor estimates the write volume of the next active period from
// an exponentially weighted moving average of past periods — the "page
// cache-based future write predictor" direction the paper sketches in its
// conclusion (Section 6, citing Hahn et al.'s just-in-time GC). flexFTL's
// background collector uses the estimate to size its reclaim target: instead
// of stopping at a fixed free-space cushion, it frees enough fast capacity
// to absorb the predicted burst entirely on LSB pages.
type writePredictor struct {
	alpha  float64 // EWMA smoothing factor
	ewma   float64 // smoothed pages-per-active-period
	cur    int64   // pages written in the current period
	primed bool
}

// newWritePredictor returns a predictor with the given smoothing factor in
// (0, 1]; larger alpha adapts faster.
func newWritePredictor(alpha float64) *writePredictor {
	return &writePredictor{alpha: alpha}
}

// ObserveWrite records one host page write in the current active period.
func (w *writePredictor) ObserveWrite() { w.cur++ }

// PeriodEnd closes the current active period (called when an idle window
// begins) and folds its volume into the estimate.
func (w *writePredictor) PeriodEnd() {
	if w.cur == 0 {
		return // idle ticks without traffic carry no information
	}
	if !w.primed {
		w.ewma = float64(w.cur)
		w.primed = true
	} else {
		w.ewma = w.alpha*float64(w.cur) + (1-w.alpha)*w.ewma
	}
	w.cur = 0
}

// PredictedPages returns the expected write volume of the next active
// period (0 until the first period completes).
func (w *writePredictor) PredictedPages() float64 {
	if !w.primed {
		return 0
	}
	return w.ewma
}
