package pageftl

import (
	"testing"

	"flexftl/internal/core"
	"flexftl/internal/ftl"
	"flexftl/internal/ftl/ftltest"
	"flexftl/internal/nand"
	"flexftl/internal/sim"
)

func fixture(t testing.TB) ftltest.Fixture {
	dev, err := nand.NewDevice(nand.Config{
		Geometry: nand.TestGeometry(),
		Timing:   nand.DefaultTiming(),
		Rules:    core.FPS,
	})
	if err != nil {
		t.Fatal(err)
	}
	f, err := New(dev, ftl.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return ftltest.Fixture{F: f, B: f.Base}
}

func TestConformance(t *testing.T) {
	ftltest.Run(t, fixture)
}

func TestName(t *testing.T) {
	if fixture(t).F.Name() != "pageFTL" {
		t.Error("name wrong")
	}
}

// TestFollowsFPSOrder: the device enforces FPS, so the fact that the
// conformance suite passes already proves legality; here we additionally
// check the LSB/MSB mix equals the canonical interleave (half LSB, half MSB
// over a full block fill).
func TestFollowsFPSOrder(t *testing.T) {
	fx := fixture(t)
	g := fx.F.Device().Geometry()
	perBlock := g.PagesPerBlock()
	chips := g.Chips()
	now := sim.Time(0)
	// Exactly enough host writes to fill one block per chip.
	for i := 0; i < perBlock*chips; i++ {
		done, err := fx.F.Write(ftl.LPN(i), now, 0)
		if err != nil {
			t.Fatal(err)
		}
		now = done
	}
	st := fx.F.Stats()
	if st.HostWritesLSB != st.HostWritesMSB {
		t.Errorf("FPS fill not balanced: %d LSB vs %d MSB", st.HostWritesLSB, st.HostWritesMSB)
	}
	if st.BackupWrites != 0 {
		t.Errorf("pageFTL performed %d backup writes, want 0 (no-power-loss baseline)", st.BackupWrites)
	}
}

// TestNoBackupEver: across a long GC-heavy run pageFTL must never write a
// backup page.
func TestNoBackupEver(t *testing.T) {
	fx := fixture(t)
	logical := fx.F.LogicalPages()
	now := sim.Time(0)
	for i := int64(0); i < 2*logical; i++ {
		done, err := fx.F.Write(ftl.LPN(i%logical), now, 1.0)
		if err != nil {
			t.Fatal(err)
		}
		now = done
	}
	if st := fx.F.Stats(); st.BackupWrites != 0 {
		t.Errorf("backup writes = %d", st.BackupWrites)
	}
}

func TestRejectsBadConfig(t *testing.T) {
	dev, err := nand.NewDevice(nand.Config{Geometry: nand.TestGeometry(), Timing: nand.DefaultTiming()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(dev, ftl.Config{OPFraction: 0, GCFreeFraction: 0.1, MinFreeBlocksPerChip: 1}); err == nil {
		t.Error("invalid config accepted")
	}
}
