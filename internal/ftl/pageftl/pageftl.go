// Package pageftl is the baseline FPS-based page-level mapping FTL of the
// paper's evaluation ("pageFTL"). It writes pages strictly in the vendor
// fixed program sequence and performs no paired-page backup — the paper uses
// it as the performance ceiling of an FPS FTL under a no-sudden-power-off
// assumption.
package pageftl

import (
	"fmt"

	"flexftl/internal/core"
	"flexftl/internal/ftl"
	"flexftl/internal/nand"
	"flexftl/internal/sim"
)

// FTL is the baseline page-mapping FTL.
type FTL struct {
	*ftl.Base
	order  []core.Page // the canonical FPS order, shared by every block
	active []cursor    // per chip
}

type cursor struct {
	blk int // -1 when no active block
	pos int
}

var _ ftl.FTL = (*FTL)(nil)

// New builds a pageFTL over the device. The device must enforce FPS (or a
// superset such as RPS; pageFTL itself always programs in FPS order).
func New(dev *nand.Device, cfg ftl.Config) (*FTL, error) {
	base, err := ftl.NewBase(dev, cfg)
	if err != nil {
		return nil, err
	}
	g := dev.Geometry()
	f := &FTL{
		Base:   base,
		order:  core.FPSOrder(g.WordLinesPerBlock),
		active: make([]cursor, g.Chips()),
	}
	for c := range f.active {
		f.active[c] = cursor{blk: -1}
	}
	return f, nil
}

// Name identifies the scheme.
func (f *FTL) Name() string { return "pageFTL" }

// Write services a host page write. util is ignored (pageFTL is performance-
// asymmetry oblivious).
func (f *FTL) Write(lpn ftl.LPN, now sim.Time, util float64) (sim.Time, error) {
	chip := f.NextChip()
	done, err := f.program(chip, lpn, f.Token(lpn), f.Spare(lpn), now, false)
	if err != nil {
		return now, err
	}
	f.St.HostWrites++
	return done, nil
}

// Read services a host page read.
func (f *FTL) Read(lpn ftl.LPN, now sim.Time) (sim.Time, error) {
	return f.ReadLPN(lpn, now)
}

// program writes one page at the chip's FPS cursor, running foreground GC
// first if the free pool is low (unless this program *is* GC relocation).
func (f *FTL) program(chip int, lpn ftl.LPN, data, spare []byte, now sim.Time, fromGC bool) (sim.Time, error) {
	if !fromGC {
		var err error
		now, err = f.foregroundGC(chip, now)
		if err != nil {
			return now, err
		}
	}
	cur := &f.active[chip]
	if cur.blk == -1 {
		blk, ok := f.Pools[chip].PopFree()
		if !ok {
			return now, fmt.Errorf("pageftl: chip %d out of free blocks", chip)
		}
		cur.blk, cur.pos = blk, 0
	}
	page := f.order[cur.pos]
	addr := nand.PageAddr{BlockAddr: nand.BlockAddr{Chip: chip, Block: cur.blk}, Page: page}
	done, err := f.Dev.Program(addr, data, spare, now)
	if err != nil {
		return now, err
	}
	f.Map.Update(lpn, f.Dev.Geometry().PPNOf(addr))
	if page.Type == core.LSB {
		if fromGC {
			f.St.GCCopiesLSB++
		} else {
			f.St.HostWritesLSB++
		}
	} else {
		if fromGC {
			f.St.GCCopiesMSB++
		} else {
			f.St.HostWritesMSB++
		}
	}
	cur.pos++
	if cur.pos == len(f.order) {
		f.Pools[chip].PushFull(cur.blk)
		cur.blk = -1
	}
	return done, nil
}

// gcAlloc is the relocation path used by the shared GC engine.
func (f *FTL) gcAlloc(chip int, lpn ftl.LPN, data, spare []byte, now sim.Time) (sim.Time, error) {
	return f.program(chip, lpn, data, spare, now, true)
}

// foregroundGC reclaims blocks inline until the chip has its minimum free
// reserve (or no victim remains).
func (f *FTL) foregroundGC(chip int, now sim.Time) (sim.Time, error) {
	for f.Pools[chip].FreeCount() < f.Cfg.MinFreeBlocksPerChip {
		victim, ok := f.Pools[chip].PickVictim()
		if !ok {
			break
		}
		var err error
		now, err = f.CollectVictim(chip, victim, now, f.gcAlloc)
		if err != nil {
			return now, err
		}
		f.St.ForegroundGCs++
	}
	return now, nil
}

// Idle runs incremental background GC while free space is below the
// threshold, resuming partially collected victims across idle windows.
func (f *FTL) Idle(now, until sim.Time) {
	f.RunBackgroundGC(now, until, f.BGCWanted, f.gcAlloc)
}
