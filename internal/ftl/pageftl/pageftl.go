// Package pageftl is the baseline FPS-based page-level mapping FTL of the
// paper's evaluation ("pageFTL"). It writes pages strictly in the vendor
// fixed program sequence and performs no paired-page backup — the paper uses
// it as the performance ceiling of an FPS FTL under a no-sudden-power-off
// assumption.
//
// The scheme is a pure configuration of the ftl kernel: the strict FPS order
// policy, no backup strategy, and the fixed allocator (see ftl.NewPageFTL).
// This package exists for import-path compatibility and scheme-local tests.
package pageftl

import (
	"flexftl/internal/ftl"
	"flexftl/internal/nand"
)

// FTL is the baseline page-mapping FTL.
type FTL = ftl.Kernel

// New builds a pageFTL over the device. The device must enforce FPS (or a
// superset such as RPS; pageFTL itself always programs in FPS order).
func New(dev *nand.Device, cfg ftl.Config) (*FTL, error) {
	return ftl.NewPageFTL(dev, cfg)
}
