// Package ftl is the FTL kernel of the simulator: one engine (Kernel) that
// owns the write/read/trim/GC/idle paths and the block life cycle,
// parameterized by three sealed policy interfaces — OrderPolicy (page
// placement under a program-sequence rule set), BackupStrategy (paired-page
// power-cut protection) and AllocPolicy (LSB/MSB preference). The five FTLs
// the repository evaluates (pageFTL, parityFTL, rtfFTL, flexFTL, and the
// n-level nflex in its subpackage) are thin configurations of that kernel —
// see schemes.go and the registry — on top of the shared infrastructure: the
// page-level mapping table with per-block valid accounting, chip selection,
// free-block pools and greedy garbage-collection victim selection.
package ftl

import (
	"fmt"

	"flexftl/internal/nand"
	"flexftl/internal/sim"
)

// LPN is a logical page number in the host address space.
type LPN int64

// Stats aggregates the counters every FTL reports. All page counts are page
// programs unless stated otherwise.
type Stats struct {
	HostReads     int64 // host-issued page reads
	HostWrites    int64 // host-issued page writes
	HostTrims     int64 // host-issued page discards
	HostWritesLSB int64 // of which serviced with LSB pages
	HostWritesMSB int64 // of which serviced with MSB pages
	GCCopies      int64 // valid-page copies performed by garbage collection
	GCCopiesLSB   int64
	GCCopiesMSB   int64
	BackupWrites  int64 // parity or copy backup page programs
	PadWrites     int64 // dummy programs spending unwanted pages (rtfFTL's return-to-fast padding)
	Erases        int64 // block erases (the Figure 8(b) lifetime metric)
	RetiredBlocks int64 // blocks retired: erase budget exceeded, or post-erase BER over the retire line
	ForegroundGCs int64 // GC invocations that stalled a host write
	BackgroundGCs int64 // GC invocations during idle windows

	// Stream-split host-write counters, maintained only by multi-stream
	// placement policies (zero for single-stream schemes, so their stats
	// stay byte-identical to the pre-placement-axis kernel).
	HostWritesHot  int64 // host writes routed to the hot stream
	HostWritesCold int64 // host writes routed to the cold stream

	// Reliability-response counters, maintained only when Config.Reliability
	// is set (all zero otherwise, keeping disabled-path stats byte-identical).
	UncorrectableReads int64 // host/scrub reads lost after the full ECC ladder (no rebuild possible)
	ECCRebuilds        int64 // ECC-lost pages reconstructed from the per-block parity
	ScrubReads         int64 // idle-window patrol reads
	RefreshCopies      int64 // page programs caused by refresh/scrub relocations (subset of GCCopies)
	RefreshedBlocks    int64 // full blocks relocated because predicted BER crossed the refresh line
	GCReadLosses       int64 // GC relocations that carried a placeholder for unrepairable data
}

// TotalPrograms returns all page programs the FTL caused.
func (s Stats) TotalPrograms() int64 {
	return s.HostWrites + s.GCCopies + s.BackupWrites + s.PadWrites
}

// WriteAmplification returns total programs per host write.
func (s Stats) WriteAmplification() float64 {
	if s.HostWrites == 0 {
		return 0
	}
	return float64(s.TotalPrograms()) / float64(s.HostWrites)
}

// Host is the device-agnostic FTL surface the runner drives: every scheme in
// the registry — MLC or n-level — implements it. Implementations are
// single-threaded over virtual time, like the devices underneath them.
type Host interface {
	// Name identifies the scheme ("pageFTL", "flexFTL", "nflexFTL(3-level)",
	// ...).
	Name() string
	// Write services a host write of one logical page at virtual time now.
	// util is the current write-buffer utilization in [0,1] (flexFTL's
	// policy input; others ignore it). It returns the completion time of
	// the page program, including any foreground GC or backup work the
	// write triggered.
	Write(lpn LPN, now sim.Time, util float64) (sim.Time, error)
	// Read services a host read of one logical page, returning completion
	// time. Reading an unwritten LPN is an error.
	Read(lpn LPN, now sim.Time) (sim.Time, error)
	// Trim invalidates a logical page (host discard/delete). It is a
	// mapping-table operation with no flash I/O; trimming an unmapped LPN
	// is a harmless no-op.
	Trim(lpn LPN, now sim.Time) (sim.Time, error)
	// Idle offers the FTL a background window [now, until): it may run
	// background GC, stopping once the window is exhausted.
	Idle(now, until sim.Time)
	// Stats returns the counter snapshot.
	Stats() Stats
	// LogicalPages returns the size of the host-visible address space.
	LogicalPages() int64
	// PageSize returns the data-page size in bytes (bandwidth accounting).
	PageSize() int
}

// FTL is a flash translation layer bound to an MLC NAND device — the Host
// surface plus access to the device itself (for erasure counts, geometry and
// fault injection).
type FTL interface {
	Host
	// Device exposes the underlying NAND device.
	Device() *nand.Device
}

// Config carries the knobs shared by every FTL implementation.
type Config struct {
	// OPFraction is the over-provisioning fraction: the host-visible space
	// is (1-OPFraction) of raw capacity. Default 0.125.
	OPFraction float64
	// GCFreeFraction triggers background GC when the free-block fraction
	// drops below it. The paper uses 10%.
	GCFreeFraction float64
	// MinFreeBlocksPerChip triggers foreground GC when a chip's free list
	// shrinks below it.
	MinFreeBlocksPerChip int
	// GC selects the victim heuristic (default GCGreedy, the paper's
	// policy; GCCostBenefit for the ablation).
	GC GCPolicy
	// Reliability enables the kernel's responses to the device BER model —
	// idle-time scrubbing, refresh-before-retention-loss, high-wear block
	// retirement, and parity rebuild of ECC-lost reads. nil (the default)
	// disables all of them; the device must carry a rel.Config when set.
	Reliability *RelPolicy
}

// DefaultConfig mirrors the paper's settings.
func DefaultConfig() Config {
	return Config{
		OPFraction:           0.125,
		GCFreeFraction:       0.10,
		MinFreeBlocksPerChip: 2,
	}
}

// Validate rejects unusable configurations.
func (c Config) Validate() error {
	if c.OPFraction <= 0 || c.OPFraction >= 0.9 {
		return fmt.Errorf("ftl: over-provisioning fraction %v outside (0,0.9)", c.OPFraction)
	}
	if c.GCFreeFraction <= 0 || c.GCFreeFraction >= 1 {
		return fmt.Errorf("ftl: GC free fraction %v outside (0,1)", c.GCFreeFraction)
	}
	if c.MinFreeBlocksPerChip < 1 {
		return fmt.Errorf("ftl: MinFreeBlocksPerChip %d < 1", c.MinFreeBlocksPerChip)
	}
	if c.Reliability != nil {
		if err := c.Reliability.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// LogicalPages computes the host-visible page count for a geometry under
// this config.
func (c Config) LogicalPages(g nand.Geometry) int64 {
	return int64(float64(g.TotalPages()) * (1 - c.OPFraction))
}
