package ftl

import (
	"testing"

	"flexftl/internal/rng"
)

func TestIntQueue(t *testing.T) {
	var q IntQueue
	if q.Len() != 0 {
		t.Fatal("zero queue not empty")
	}
	for i := 0; i < 20; i++ {
		q.Push(i)
	}
	if q.Len() != 20 || q.Front() != 0 || q.At(19) != 19 {
		t.Fatalf("Len=%d Front=%d At(19)=%d", q.Len(), q.Front(), q.At(19))
	}
	for i := 0; i < 20; i++ {
		if v := q.PopFront(); v != i {
			t.Fatalf("PopFront = %d, want %d", v, i)
		}
	}
	// Interleaved push/pop exercises wraparound: push two, pop one, so the
	// head chases the tail around the ring while the queue slowly grows.
	next := 0
	pushed := 0
	for i := 0; i < 100; i++ {
		q.Push(pushed)
		pushed++
		q.Push(pushed)
		pushed++
		if v := q.PopFront(); v != next {
			t.Fatalf("wraparound PopFront = %d, want %d", v, next)
		}
		next++
	}
	for q.Len() > 0 {
		if v := q.PopFront(); v != next {
			t.Fatalf("drain PopFront = %d, want %d", v, next)
		}
		next++
	}
	if next != pushed {
		t.Fatalf("drained %d values, pushed %d", next, pushed)
	}

	defer func() {
		if recover() == nil {
			t.Error("PopFront of empty queue did not panic")
		}
	}()
	q.PopFront()
}

func TestIntQueueAtPanics(t *testing.T) {
	var q IntQueue
	q.Push(1)
	defer func() {
		if recover() == nil {
			t.Error("At out of range did not panic")
		}
	}()
	q.At(1)
}

// TestIntQueueBounded pins the fix for the old `s = s[1:]` idiom: a queue
// cycled through many push/pop rounds must not grow its backing array beyond
// a small multiple of its peak occupancy.
func TestIntQueueBounded(t *testing.T) {
	var q IntQueue
	for round := 0; round < 10000; round++ {
		for i := 0; i < 4; i++ {
			q.Push(round*4 + i)
		}
		for i := 0; i < 4; i++ {
			q.PopFront()
		}
	}
	if q.Cap() > 16 {
		t.Errorf("queue capacity grew to %d over push/pop cycles (peak occupancy 4)", q.Cap())
	}
}

// TestFreePoolFreeListBounded is the same boundedness property for the pool's
// free ring under many erase/alloc cycles.
func TestFreePoolFreeListBounded(t *testing.T) {
	p := NewFreePool(0, 8)
	for i := 0; i < 10000; i++ {
		b, ok := p.PopFree()
		if !ok {
			t.Fatal("pool exhausted")
		}
		p.PushFree(b)
	}
	if p.free.Cap() > 32 {
		t.Errorf("free ring capacity grew to %d over %d cycles of an 8-block pool", p.free.Cap(), 10000)
	}
	if p.FreeCount() != 8 {
		t.Errorf("free count = %d, want 8", p.FreeCount())
	}
}

// bindSynthetic attaches a pool to a plain valid-count slice, the standalone
// harness the index tests and benchmarks use in place of a full Mapper.
func bindSynthetic(p *FreePool, ppb int, valid []int) {
	p.Bind(ppb, func(blk int) int { return valid[blk] })
}

// TestPickVictimCostBenefitIndex is the dedicated cost-benefit coverage:
// age weighting, zero-invalid skip, and heap/bucket maintenance through
// NoteValidChange, each pick cross-checked against the reference scan.
func TestPickVictimCostBenefitIndex(t *testing.T) {
	const ppb = 12
	valid := make([]int, 8)
	p := NewFreePool(0, 8)
	p.Policy = GCCostBenefit
	bindSynthetic(p, ppb, valid)

	check := func(label string) int {
		t.Helper()
		got, gotOK := p.PickVictim()
		want, wantOK := p.PickVictimReference()
		if got != want || gotOK != wantOK {
			t.Fatalf("%s: indexed pick = %d,%v, reference = %d,%v", label, got, gotOK, want, wantOK)
		}
		return got
	}

	// A fully valid block is never a candidate.
	b0, _ := p.PopFree()
	valid[b0] = ppb
	p.PushFull(b0)
	if v, ok := p.PickVictim(); ok {
		t.Fatalf("fully valid block picked: %d", v)
	}
	check("only-valid")

	// Age weighting: an old block with moderate garbage must beat a young
	// block with slightly more garbage once enough clock ticks separate them.
	old, _ := p.PopFree()
	valid[old] = ppb / 2
	p.PushFull(old)
	for i := 0; i < 40; i++ { // advance the pool clock
		bx, _ := p.PopFree()
		valid[bx] = ppb
		p.PushFull(bx)
		p.TakeFull(bx)
		p.PushFree(bx)
	}
	young, _ := p.PopFree()
	valid[young] = ppb/2 - 1
	p.PushFull(young)
	if v := check("age-weighting"); v != old {
		t.Fatalf("cost-benefit picked %d, want aged block %d", v, old)
	}

	// Re-bucketing: invalidate the young block down to fully invalid. Its
	// (1-u)/(1+u) factor hits the maximum of 1.0, but at age 1 its score (1)
	// still loses to the old block's (age ~42 x factor 1/3) — age dominates,
	// and the index must track the re-bucketing without disagreeing.
	for valid[young] > 0 {
		valid[young]--
		p.NoteValidChange(young)
	}
	if v := check("note-valid-change"); v != old {
		t.Fatalf("after full invalidation picked %d, want still-aged %d", v, old)
	}

	// Taking the winner exposes the runner-up, still in agreement.
	p.TakeFull(old)
	if v := check("after-take"); v != young {
		t.Fatalf("after taking %d picked %d, want %d", old, v, young)
	}
}

// TestCostBenefitTieBreak pins the heap comparator's tie rule: equal scores
// resolve to the older stamp, matching the reference scan's strict `>` (which
// keeps the earliest full-list entry on a tie).
func TestCostBenefitTieBreak(t *testing.T) {
	older := cbEntry{blk: 3, stamp: 5, score: 1.0}
	younger := cbEntry{blk: 7, stamp: 9, score: 1.0}
	if !cbBetter(older, younger) {
		t.Error("equal scores: older stamp must win")
	}
	if cbBetter(younger, older) {
		t.Error("equal scores: younger stamp must lose")
	}
	if !cbBetter(cbEntry{score: 2, stamp: 9}, cbEntry{score: 1, stamp: 5}) {
		t.Error("higher score must win regardless of stamp")
	}
}

// TestGreedyTieBreakFIFO pins the greedy tie rule through the index path:
// among equally dirty blocks the earliest-pushed one wins.
func TestGreedyTieBreakFIFO(t *testing.T) {
	const ppb = 16
	valid := make([]int, 8)
	p := NewFreePool(0, 8)
	bindSynthetic(p, ppb, valid)
	first, _ := p.PopFree()
	second, _ := p.PopFree()
	valid[first], valid[second] = ppb/2, ppb/2
	p.PushFull(first)
	p.PushFull(second)
	v, ok := p.PickVictim()
	if !ok || v != first {
		t.Fatalf("greedy tie picked %d, want first-pushed %d", v, first)
	}
	if rv, rok := p.PickVictimReference(); rv != v || rok != ok {
		t.Fatalf("reference disagrees on tie: %d vs %d", rv, v)
	}
	// Demote the second block into a lower bucket than the first: it must
	// now win even though it is younger.
	valid[second] = ppb / 4
	p.NoteValidChange(second)
	v, _ = p.PickVictim()
	if v != second {
		t.Fatalf("dirtier block not picked after re-bucket: got %d", v)
	}
}

// TestVictimIndexMatchesReference is the determinism property test: under
// randomized write/trim/GC sequences the indexed picker must agree with the
// retained reference linear scan on every single pick, for both policies.
func TestVictimIndexMatchesReference(t *testing.T) {
	for _, policy := range []GCPolicy{GCGreedy, GCCostBenefit} {
		policy := policy
		t.Run(policy.String(), func(t *testing.T) {
			for seed := uint64(1); seed <= 5; seed++ {
				runVictimProperty(t, policy, seed)
			}
		})
	}
}

func runVictimProperty(t *testing.T, policy GCPolicy, seed uint64) {
	t.Helper()
	const (
		blocks = 48
		ppb    = 16
		steps  = 4000
	)
	valid := make([]int, blocks)
	p := NewFreePool(0, blocks)
	p.Policy = policy
	bindSynthetic(p, ppb, valid)
	r := rng.New(seed)

	var full []int
	removeFull := func(b int) {
		for i, x := range full {
			if x == b {
				full = append(full[:i], full[i+1:]...)
				return
			}
		}
		t.Fatalf("seed %d: block %d not tracked as full", seed, b)
	}
	crossCheck := func(step int) (int, bool) {
		t.Helper()
		got, gotOK := p.PickVictim()
		want, wantOK := p.PickVictimReference()
		if got != want || gotOK != wantOK {
			t.Fatalf("seed %d step %d (%v): indexed = %d,%v reference = %d,%v",
				seed, step, policy, got, gotOK, want, wantOK)
		}
		return got, gotOK
	}

	for step := 0; step < steps; step++ {
		switch op := r.Intn(100); {
		case op < 35: // fill a block and push it full ("write" burst)
			if b, ok := p.PopFree(); ok {
				valid[b] = r.Intn(ppb + 1)
				p.PushFull(b)
				full = append(full, b)
			}
		case op < 75: // invalidate a page of a random full block ("trim"/update)
			if len(full) > 0 {
				b := full[r.Intn(len(full))]
				if valid[b] > 0 {
					valid[b]--
					p.NoteValidChange(b)
				}
			}
		case op < 85: // revalidation stresses upward re-bucketing too
			if len(full) > 0 {
				b := full[r.Intn(len(full))]
				if valid[b] < ppb {
					valid[b]++
					p.NoteValidChange(b)
				}
			}
		case op < 95: // GC: collect the agreed victim
			if v, ok := crossCheck(step); ok {
				p.TakeFull(v)
				removeFull(v)
				valid[v] = 0
				p.PushFree(v)
			}
		default: // mapper swap: rebuild the index from scratch
			p.Reindex()
		}
		crossCheck(step)
	}
}

// TestReindexAfterMapperSwap pins that Reindex rebuilds buckets from the
// current valid source — the SetMapper path — including stamp order within a
// bucket.
func TestReindexAfterMapperSwap(t *testing.T) {
	const ppb = 8
	valid := make([]int, 4)
	p := NewFreePool(0, 4)
	bindSynthetic(p, ppb, valid)
	a, _ := p.PopFree()
	b, _ := p.PopFree()
	valid[a], valid[b] = 4, 2
	p.PushFull(a)
	p.PushFull(b)
	// Simulate a rebuilt mapper disagreeing with the old counts: mutate the
	// backing slice without notifications, then Reindex.
	valid[a], valid[b] = 1, 6
	p.Reindex()
	v, ok := p.PickVictim()
	if !ok || v != a {
		t.Fatalf("post-reindex pick = %d,%v, want %d", v, ok, a)
	}
	if rv, _ := p.PickVictimReference(); rv != v {
		t.Fatalf("reference disagrees after reindex: %d vs %d", rv, v)
	}
}

func TestPickVictimPanicsUnbound(t *testing.T) {
	p := NewFreePool(0, 2)
	defer func() {
		if recover() == nil {
			t.Error("PickVictim on unbound pool did not panic")
		}
	}()
	p.PickVictim()
}

func TestDuplicatePushFullPanics(t *testing.T) {
	p := NewFreePool(0, 2)
	b, _ := p.PopFree()
	p.PushFull(b)
	defer func() {
		if recover() == nil {
			t.Error("duplicate PushFull did not panic")
		}
	}()
	p.PushFull(b)
}
