package ftl

import (
	"fmt"

	"flexftl/internal/obs"
	"flexftl/internal/sim"
)

// Pref is a page-type preference an allocation policy hands to the order
// policy. Order policies that control placement themselves (the strict FPS
// cursor) ignore it; the others map it onto LSB/MSB page choice.
type Pref int

const (
	// PrefOrder defers entirely to the order policy's own sequence.
	PrefOrder Pref = iota
	// PrefFast asks for a fast (LSB) page.
	PrefFast
	// PrefSlow asks for a slow (MSB) page.
	PrefSlow
)

// FlexParams are the adaptive-allocation policy knobs of Section 3.2 (the
// paper's u/q policy manager), shared by flexFTL and any hybrid that mounts
// the adaptive allocator.
type FlexParams struct {
	// UHigh and ULow are the write-buffer utilization thresholds. Above
	// UHigh the policy prefers LSB writes (while q > 0); below ULow it
	// prefers MSB writes; in between it alternates.
	UHigh, ULow float64
	// QuotaFraction sets the initial LSB quota q as a fraction of the
	// device's total LSB pages. The paper uses 5%.
	QuotaFraction float64
	// BGCCopyLSB is an ablation switch: when set, the background garbage
	// collector relocates valid pages through LSB pages instead of MSB
	// pages, forfeiting the quota-replenishing effect of Section 3.2. The
	// ablation benchmarks use it to quantify that design choice.
	BGCCopyLSB bool
	// PredictiveBGC enables the Section 6 extension: an EWMA future-write
	// predictor sizes the background collector's reclaim target so the
	// next burst's predicted volume fits in free fast capacity, instead of
	// stopping at the fixed free-space cushion.
	PredictiveBGC bool
	// PredictorAlpha is the EWMA smoothing factor (default 0.3).
	PredictorAlpha float64
}

// DefaultFlexParams mirrors the paper's evaluation settings: uhigh=80%,
// ulow=10%, q0 = 5% of total LSB pages.
func DefaultFlexParams() FlexParams {
	return FlexParams{UHigh: 0.8, ULow: 0.1, QuotaFraction: 0.05, PredictorAlpha: 0.3}
}

// Validate rejects inconsistent parameters.
func (p FlexParams) Validate() error {
	if p.ULow < 0 || p.UHigh > 1 || p.ULow >= p.UHigh {
		return fmt.Errorf("ftl: need 0 <= ulow < uhigh <= 1, got %v/%v", p.ULow, p.UHigh)
	}
	if p.QuotaFraction <= 0 || p.QuotaFraction > 1 {
		return fmt.Errorf("ftl: quota fraction %v outside (0,1]", p.QuotaFraction)
	}
	return nil
}

// AllocPolicy decides the page-type preference of every program: the host
// write path asks chooseHost (with the write-buffer utilization), GC
// relocations ask chooseGC, and onProgram observes every data program for
// quota accounting. The interface is sealed — implementations live in this
// package and are obtained from FixedAllocPolicy / AdaptiveAllocPolicy.
type AllocPolicy interface {
	init(k *Kernel) error
	chooseHost(k *Kernel, chip int, util float64, now sim.Time) Pref
	chooseGC(k *Kernel, chip int) Pref
	onProgram(k *Kernel, isLSB, fromGC bool)
}

// FixedAllocPolicy returns the trivial allocator: host writes and GC
// relocations each carry a fixed preference (pageFTL/parityFTL defer to the
// program order; rtfFTL prefers fast pages for hosts and slow pages for the
// return-to-fast drain).
func FixedAllocPolicy(host, gc Pref) AllocPolicy {
	return &fixedAlloc{host: host, gc: gc}
}

type fixedAlloc struct {
	host, gc Pref
}

func (a *fixedAlloc) init(*Kernel) error { return nil }

func (a *fixedAlloc) chooseHost(*Kernel, int, float64, sim.Time) Pref { return a.host }

func (a *fixedAlloc) chooseGC(*Kernel, int) Pref { return a.gc }

func (a *fixedAlloc) onProgram(*Kernel, bool, bool) {}

// AdaptiveAllocPolicy returns the Section 3.2 policy manager: LSB/MSB choice
// from the write-buffer utilization u and the global LSB quota q, with
// background-GC relocations replenishing q.
func AdaptiveAllocPolicy(p FlexParams) AllocPolicy {
	return &adaptiveAlloc{p: p}
}

type adaptiveAlloc struct {
	p      FlexParams
	q      int64  // LSB quota (global, like the paper's single q)
	q0     int64  // initial quota, for observability
	toggle []bool // per-chip alternation state for the mid-utilization band
}

func (a *adaptiveAlloc) init(k *Kernel) error {
	if err := a.p.Validate(); err != nil {
		return err
	}
	g := k.Dev.Geometry()
	totalLSB := int64(g.TotalBlocks()) * int64(g.LSBPagesPerBlock())
	a.q = int64(a.p.QuotaFraction * float64(totalLSB))
	if a.q < 1 {
		a.q = 1
	}
	a.q0 = a.q
	a.toggle = make([]bool, g.Chips())
	return nil
}

// chooseHost implements the Section 3.2 policy table.
func (a *adaptiveAlloc) chooseHost(k *Kernel, chip int, util float64, now sim.Time) Pref {
	useLSB := a.choose(k, chip, util)
	if k.Obs != nil {
		lsb := int64(0)
		if useLSB {
			lsb = 1
		}
		k.Obs.Instant(obs.KindPolicy, int32(chip), now, lsb, a.q)
	}
	if useLSB {
		return PrefFast
	}
	return PrefSlow
}

func (a *adaptiveAlloc) choose(k *Kernel, chip int, util float64) bool {
	// Corner case (footnote 1): with no slow block MSB pages do not exist.
	if !k.ord.slowAvailable(k, chip) {
		return true
	}
	// Drain mode: with no fast capacity left beyond the GC reserve, spend
	// MSB pages — they consume no free blocks, and completing slow blocks
	// feeds the GC candidate list.
	if k.ord.fastBudget(k, chip) <= 0 {
		return false
	}
	alternate := func() bool {
		a.toggle[chip] = !a.toggle[chip]
		return a.toggle[chip]
	}
	switch {
	case util > a.p.UHigh:
		// Condition [C2] of Section 3.2: successive LSB writes must not
		// degrade future bandwidth, so bursts spend LSB pages only while
		// the quota lasts.
		if a.q > 0 {
			return true
		}
		return alternate()
	case util < a.p.ULow:
		return false
	default:
		return alternate()
	}
}

// chooseGC implements the Section 3.2 relocation rule: the background
// collector copies through MSB pages (raising q); foreground collections
// alternate page types instead, to keep the two-phase balance.
func (a *adaptiveAlloc) chooseGC(k *Kernel, chip int) Pref {
	if k.inBGC {
		if a.p.BGCCopyLSB { // ablation: default false = MSB copies
			return PrefFast
		}
		return PrefSlow
	}
	a.toggle[chip] = !a.toggle[chip]
	if a.toggle[chip] {
		return PrefFast
	}
	return PrefSlow
}

// onProgram does the quota accounting: host writes always move q; GC
// relocations only when running in background (Section 3.2 credits q
// increases to the *background* collector). MSB programs replenish q, but
// never beyond its initial budget — otherwise long idle phases would bank an
// unbounded LSB surplus whose blocks carry GC-filled (cold, long-valid) MSB
// halves, putting a floor under every future victim's valid count.
func (a *adaptiveAlloc) onProgram(k *Kernel, isLSB, fromGC bool) {
	if k.shardExec {
		// Epoch-sharded execution freezes q; the barrier replays the exact
		// arithmetic in global write order (quota-sign stability was checked
		// at planning time, so frozen-q decisions match serial ones).
		return
	}
	if isLSB {
		if !fromGC || k.inBGC {
			a.q--
		}
		return
	}
	if (!fromGC || k.inBGC) && a.q < a.q0 {
		a.q++
	}
}
