package metrics

import (
	"math"
	"testing"

	"flexftl/internal/sim"
)

func TestNewCollectorPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewCollector(0, sim.Second) },
		func() { NewCollector(4096, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestCountsAndIOPS(t *testing.T) {
	c := NewCollector(4096, 50*sim.Millisecond)
	c.RecordRead(1, 0, 100)
	c.RecordWrite(2, 100, 150, 1100)
	c.AddActive(2 * sim.Second)
	res := c.Finalize()
	if res.Requests != 2 || res.Reads != 1 || res.Writes != 1 {
		t.Errorf("counts: %+v", res)
	}
	if res.PagesRead != 1 || res.PagesWrit != 2 {
		t.Errorf("pages: %+v", res)
	}
	if want := 1.0; res.IOPS != want {
		t.Errorf("IOPS = %v, want %v (2 reqs / 2s active)", res.IOPS, want)
	}
	if res.Makespan != 1100 {
		t.Errorf("makespan = %v", res.Makespan)
	}
}

func TestIOPSZeroActive(t *testing.T) {
	c := NewCollector(4096, 50*sim.Millisecond)
	c.RecordRead(1, 0, 10)
	if res := c.Finalize(); res.IOPS != 0 {
		t.Errorf("IOPS = %v without active time", res.IOPS)
	}
}

func TestNegativeActiveIgnored(t *testing.T) {
	c := NewCollector(4096, 50*sim.Millisecond)
	c.AddActive(-5 * sim.Second)
	if res := c.Finalize(); res.ActiveTime != 0 {
		t.Errorf("active = %v", res.ActiveTime)
	}
}

func TestBandwidthWindows(t *testing.T) {
	const window = 100 * sim.Millisecond
	c := NewCollector(1<<20, window) // 1 MB pages for easy arithmetic
	// Two writes completing in window 0: 3 MB over 0.1 s = 30 MB/s.
	c.RecordWrite(1, 0, 0, 10*sim.Millisecond)
	c.RecordWrite(2, 0, 0, 20*sim.Millisecond)
	// One write in window 5: 1 MB over 0.1 s = 10 MB/s.
	c.RecordWrite(1, 0, 0, 510*sim.Millisecond)
	res := c.Finalize()
	if res.BandwidthCDF.N() != 2 {
		t.Fatalf("windows = %d, want 2 (idle windows excluded)", res.BandwidthCDF.N())
	}
	if math.Abs(res.MeanWriteBandwidthMBs-20) > 1e-9 {
		t.Errorf("mean BW = %v, want 20", res.MeanWriteBandwidthMBs)
	}
	if math.Abs(res.BandwidthCDF.Max()-30) > 1e-9 {
		t.Errorf("max BW = %v, want 30", res.BandwidthCDF.Max())
	}
	if res.PeakWriteBandwidthMBs < 10 || res.PeakWriteBandwidthMBs > 30 {
		t.Errorf("peak BW = %v", res.PeakWriteBandwidthMBs)
	}
}

func TestResponseTimes(t *testing.T) {
	c := NewCollector(4096, 50*sim.Millisecond)
	c.RecordRead(1, 0, 100)         // 100 us
	c.RecordWrite(1, 0, 300, 10000) // ack at 300 -> resp 300 us
	res := c.Finalize()
	if res.ResponseTime.Min != 100 || res.ResponseTime.Max != 300 {
		t.Errorf("resp = %+v", res.ResponseTime)
	}
	if res.ReadResponse.Median != 100 {
		t.Errorf("read resp = %+v", res.ReadResponse)
	}
	if res.WriteResponse.Median != 300 {
		t.Errorf("write resp = %+v", res.WriteResponse)
	}
}

func TestTrimRecording(t *testing.T) {
	c := NewCollector(4096, 50*sim.Millisecond)
	c.RecordTrim(4, 100, 100)
	res := c.Finalize()
	if res.Trims != 1 || res.Requests != 1 {
		t.Errorf("trim counts: %+v", res)
	}
	if res.ResponseTime.Max != 0 {
		t.Errorf("trim response = %+v (metadata op should be free)", res.ResponseTime)
	}
}

// TestLatencyReport: the per-class percentile view splits ack from flush and
// computes exact order statistics.
func TestLatencyReport(t *testing.T) {
	c := NewCollector(4096, 50*sim.Millisecond)
	// 100 writes: ack latency i, flush latency i+1000, i = 1..100.
	for i := 1; i <= 100; i++ {
		c.RecordWrite(1, 0, sim.Time(i), sim.Time(i+1000))
	}
	c.RecordRead(1, 0, 500)
	c.RecordTrim(1, 10, 10)
	lat := c.Latency()
	if lat.WriteAck.Count != 100 || lat.WriteFlush.Count != 100 {
		t.Fatalf("write counts = %d/%d", lat.WriteAck.Count, lat.WriteFlush.Count)
	}
	if lat.WriteAck.Mean != 50.5 {
		t.Errorf("ack mean = %v, want 50.5", lat.WriteAck.Mean)
	}
	// Linear interpolation over 1..100: q maps to 1 + 99q.
	if got := lat.WriteAck.P50; got != 50.5 {
		t.Errorf("ack p50 = %v, want 50.5", got)
	}
	if got := lat.WriteAck.P99; got != 1+99*0.99 {
		t.Errorf("ack p99 = %v, want %v", got, 1+99*0.99)
	}
	if lat.WriteAck.Max != 100 {
		t.Errorf("ack max = %v", lat.WriteAck.Max)
	}
	if got := lat.WriteFlush.P50 - lat.WriteAck.P50; got != 1000 {
		t.Errorf("flush-ack p50 gap = %v, want 1000", got)
	}
	if lat.Read.Count != 1 || lat.Read.P999 != 500 || lat.Read.Max != 500 {
		t.Errorf("read percentiles = %+v", lat.Read)
	}
	if lat.Trim.Count != 1 || lat.Trim.Max != 0 {
		t.Errorf("trim percentiles = %+v", lat.Trim)
	}
	// Latency does not consume the collector: Finalize still sees everything.
	if res := c.Finalize(); res.Writes != 100 || res.Reads != 1 {
		t.Errorf("finalize after Latency: %+v", res)
	}
}

func TestLatencyEmpty(t *testing.T) {
	c := NewCollector(4096, 50*sim.Millisecond)
	lat := c.Latency()
	if lat != (LatencyReport{}) {
		t.Errorf("empty collector latency = %+v, want zero", lat)
	}
}

func TestResultString(t *testing.T) {
	c := NewCollector(4096, 50*sim.Millisecond)
	c.RecordWrite(1, 0, 1, 2)
	c.AddActive(sim.Second)
	if s := c.Finalize().String(); s == "" {
		t.Error("empty summary")
	}
}
