// Package metrics collects the measurements behind the paper's evaluation
// figures: IOPS over active time (Figure 8(a)), block erasure counts
// (Figure 8(b)) and windowed write-bandwidth distributions (Figure 8(c)),
// plus response-time statistics.
package metrics

import (
	"fmt"
	"sort"

	"flexftl/internal/sim"
	"flexftl/internal/stats"
)

// Collector accumulates per-request measurements during a run.
type Collector struct {
	pageSize    int
	windowWidth sim.Time

	requests  int64
	reads     int64
	writes    int64
	trims     int64
	pagesRead int64
	pagesWrit int64

	respTimes  []float64 // per-request response time, microseconds
	readTimes  []float64 // read-only response times
	writeTimes []float64 // write acknowledgement times
	writeFlush []float64 // write flush times (last page program finished)
	trimTimes  []float64 // trim completion times

	// Write-bandwidth windows: bytes of host write completions bucketed
	// into fixed windows of virtual time.
	windowBytes map[int64]int64

	activeTime sim.Time
	makespan   sim.Time
}

// NewCollector builds a collector. pageSize is the logical page size in
// bytes; windowWidth is the bandwidth sampling window (50 ms reproduces the
// Figure 8(c) granularity well).
func NewCollector(pageSize int, windowWidth sim.Time) *Collector {
	if pageSize <= 0 || windowWidth <= 0 {
		panic("metrics: pageSize and windowWidth must be positive")
	}
	return &Collector{
		pageSize:    pageSize,
		windowWidth: windowWidth,
		windowBytes: make(map[int64]int64),
	}
}

// RecordRead notes a completed read request.
func (c *Collector) RecordRead(pages int, arrival, done sim.Time) {
	c.requests++
	c.reads++
	c.pagesRead += int64(pages)
	c.respTimes = append(c.respTimes, float64(done-arrival))
	c.readTimes = append(c.readTimes, float64(done-arrival))
	if done > c.makespan {
		c.makespan = done
	}
}

// RecordWrite notes a completed write request. ack is when the host was
// acknowledged (buffer admission of the last page); flushed is when the last
// page program finished — bandwidth windows use the flush times.
func (c *Collector) RecordWrite(pages int, arrival, ack, flushed sim.Time) {
	c.requests++
	c.writes++
	c.pagesWrit += int64(pages)
	c.respTimes = append(c.respTimes, float64(ack-arrival))
	c.writeTimes = append(c.writeTimes, float64(ack-arrival))
	c.writeFlush = append(c.writeFlush, float64(flushed-arrival))
	c.windowBytes[int64(flushed/c.windowWidth)] += int64(pages) * int64(c.pageSize)
	if flushed > c.makespan {
		c.makespan = flushed
	}
}

// RecordTrim notes a completed discard request.
func (c *Collector) RecordTrim(pages int, arrival, done sim.Time) {
	c.requests++
	c.trims++
	c.respTimes = append(c.respTimes, float64(done-arrival))
	c.trimTimes = append(c.trimTimes, float64(done-arrival))
	if done > c.makespan {
		c.makespan = done
	}
}

// AddActive accumulates active (non-idle) virtual time.
func (c *Collector) AddActive(d sim.Time) {
	if d > 0 {
		c.activeTime += d
	}
}

// Result is the summary of one run.
type Result struct {
	Requests   int64
	Reads      int64
	Writes     int64
	Trims      int64
	PagesRead  int64
	PagesWrit  int64
	ActiveTime sim.Time
	Makespan   sim.Time
	// IOPS is requests per second of active time — idle gaps (which all
	// FTLs share identically, being workload-driven) are excluded so the
	// comparison isolates service capability, like the paper's IOPS metric.
	IOPS float64
	// MeanWriteBandwidthMBs averages the nonzero write-bandwidth windows.
	MeanWriteBandwidthMBs float64
	// PeakWriteBandwidthMBs is the 99th-percentile window (robust peak).
	PeakWriteBandwidthMBs float64
	// BandwidthCDF is the empirical distribution of per-window write
	// bandwidth in MB/s, over windows with any write completion.
	BandwidthCDF *stats.CDF
	// ResponseTime summarizes per-request response times in microseconds;
	// ReadResponse and WriteResponse split it by request class (reads
	// complete at data return, writes at buffer acknowledgement).
	ResponseTime  stats.FiveNum
	ReadResponse  stats.FiveNum
	WriteResponse stats.FiveNum
}

// Finalize computes the run summary.
func (c *Collector) Finalize() Result {
	res := Result{
		Requests:   c.requests,
		Reads:      c.reads,
		Writes:     c.writes,
		Trims:      c.trims,
		PagesRead:  c.pagesRead,
		PagesWrit:  c.pagesWrit,
		ActiveTime: c.activeTime,
		Makespan:   c.makespan,
	}
	if c.activeTime > 0 {
		res.IOPS = float64(c.requests) / c.activeTime.Seconds()
	}
	var bws []float64
	for _, bytes := range c.windowBytes {
		mbs := float64(bytes) / (1 << 20) / c.windowWidth.Seconds()
		bws = append(bws, mbs)
	}
	res.BandwidthCDF = stats.NewCDF(bws)
	if len(bws) > 0 {
		res.MeanWriteBandwidthMBs = stats.Mean(bws)
		res.PeakWriteBandwidthMBs = stats.Quantile(bws, 0.99)
	}
	res.ResponseTime = stats.Summarize(c.respTimes)
	res.ReadResponse = stats.Summarize(c.readTimes)
	res.WriteResponse = stats.Summarize(c.writeTimes)
	return res
}

// Percentiles summarizes one latency class with the tail points the paper's
// latency claim turns on. All values are microseconds of virtual time,
// computed exactly (sorted order statistics with linear interpolation), not
// from histogram buckets.
type Percentiles struct {
	Count                    int64
	Mean, P50, P90, P95, P99 float64
	P999, Max                float64
}

// LatencyReport is the per-op-class percentile view of one run: reads
// complete at data return, write acks at buffer admission, write flushes at
// the last page program, trims at metadata completion.
type LatencyReport struct {
	Read       Percentiles
	WriteAck   Percentiles
	WriteFlush Percentiles
	Trim       Percentiles
}

// percentilesOf computes an exact summary, sorting a copy of xs once.
func percentilesOf(xs []float64) Percentiles {
	if len(xs) == 0 {
		return Percentiles{}
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return Percentiles{
		Count: int64(len(sorted)),
		Mean:  stats.Mean(sorted),
		P50:   stats.QuantileSorted(sorted, 0.50),
		P90:   stats.QuantileSorted(sorted, 0.90),
		P95:   stats.QuantileSorted(sorted, 0.95),
		P99:   stats.QuantileSorted(sorted, 0.99),
		P999:  stats.QuantileSorted(sorted, 0.999),
		Max:   sorted[len(sorted)-1],
	}
}

// Latency computes the per-class percentile report from the raw per-request
// samples. Like Finalize it reads the collector without consuming it.
func (c *Collector) Latency() LatencyReport {
	return LatencyReport{
		Read:       percentilesOf(c.readTimes),
		WriteAck:   percentilesOf(c.writeTimes),
		WriteFlush: percentilesOf(c.writeFlush),
		Trim:       percentilesOf(c.trimTimes),
	}
}

// String renders a one-line summary.
func (r Result) String() string {
	return fmt.Sprintf("%d reqs (%dR/%dW) IOPS=%.0f meanBW=%.1fMB/s peakBW=%.1fMB/s active=%v",
		r.Requests, r.Reads, r.Writes, r.IOPS, r.MeanWriteBandwidthMBs, r.PeakWriteBandwidthMBs, r.ActiveTime)
}
