// Package stats provides the small statistical toolkit shared by the
// reliability model, the metrics collector and the experiment harness:
// quantiles, five-number (box-plot) summaries, means and deviations, and
// empirical CDFs.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation, or 0 for fewer than two
// samples.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(xs)))
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics. It sorts a copy; xs is untouched.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return quantileSorted(sorted, q)
}

// QuantileSorted returns the q-quantile of an already-sorted slice without
// copying — callers that need many quantiles of one sample sort once and use
// this (0 for an empty slice).
func QuantileSorted(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	return quantileSorted(sorted, q)
}

func quantileSorted(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 1 {
		return sorted[0]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// FiveNum is a box-plot summary.
type FiveNum struct {
	Min, Q1, Median, Q3, Max float64
}

// Summarize computes the five-number summary of xs.
func Summarize(xs []float64) FiveNum {
	if len(xs) == 0 {
		return FiveNum{}
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return FiveNum{
		Min:    sorted[0],
		Q1:     quantileSorted(sorted, 0.25),
		Median: quantileSorted(sorted, 0.5),
		Q3:     quantileSorted(sorted, 0.75),
		Max:    sorted[len(sorted)-1],
	}
}

// String renders the summary the way the experiment tables print box plots.
func (f FiveNum) String() string {
	return fmt.Sprintf("min=%.4g q1=%.4g med=%.4g q3=%.4g max=%.4g",
		f.Min, f.Q1, f.Median, f.Q3, f.Max)
}

// CDF is an empirical cumulative distribution over observed samples.
type CDF struct {
	sorted []float64
}

// NewCDF builds an empirical CDF from samples (a copy is taken).
func NewCDF(xs []float64) *CDF {
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return &CDF{sorted: sorted}
}

// N returns the sample count.
func (c *CDF) N() int { return len(c.sorted) }

// At returns P(X <= x).
func (c *CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	idx := sort.SearchFloat64s(c.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(idx) / float64(len(c.sorted))
}

// Inverse returns the smallest sample value v with P(X <= v) >= p; i.e. the
// p-quantile read off the empirical distribution.
func (c *CDF) Inverse(p float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	if p <= 0 {
		return c.sorted[0]
	}
	if p >= 1 {
		return c.sorted[len(c.sorted)-1]
	}
	idx := int(math.Ceil(p*float64(len(c.sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	return c.sorted[idx]
}

// Max returns the largest sample (0 if empty).
func (c *CDF) Max() float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	return c.sorted[len(c.sorted)-1]
}

// Points returns n evenly spaced (value, cumulative-probability) points
// suitable for plotting the CDF curve.
func (c *CDF) Points(n int) [][2]float64 {
	if len(c.sorted) == 0 || n <= 0 {
		return nil
	}
	out := make([][2]float64, 0, n)
	for i := 0; i < n; i++ {
		p := float64(i+1) / float64(n)
		out = append(out, [2]float64{c.Inverse(p), p})
	}
	return out
}
