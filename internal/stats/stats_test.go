package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Errorf("Mean = %v, want 2.5", got)
	}
}

func TestStdDev(t *testing.T) {
	if StdDev([]float64{5}) != 0 {
		t.Error("StdDev of one sample != 0")
	}
	got := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if math.Abs(got-2) > 1e-12 {
		t.Errorf("StdDev = %v, want 2", got)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.5, 3}, {1, 5}, {0.25, 2}, {0.75, 4},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); got != c.want {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	// Clamping.
	if Quantile(xs, -1) != 1 || Quantile(xs, 2) != 5 {
		t.Error("quantile clamping wrong")
	}
	if Quantile(nil, 0.5) != 0 {
		t.Error("Quantile(nil) != 0")
	}
	if Quantile([]float64{7}, 0.9) != 7 {
		t.Error("single-sample quantile wrong")
	}
	// Interpolation.
	if got := Quantile([]float64{0, 10}, 0.5); got != 5 {
		t.Errorf("interpolated quantile = %v, want 5", got)
	}
}

// TestQuantileSorted: the sort-free variant agrees with Quantile on
// pre-sorted input and clamps/handles empties the same way.
func TestQuantileSorted(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 5}
	for _, q := range []float64{0, 0.25, 0.5, 0.75, 0.99, 1} {
		if got, want := QuantileSorted(sorted, q), Quantile(sorted, q); got != want {
			t.Errorf("QuantileSorted(%v) = %v, Quantile = %v", q, got, want)
		}
	}
	if QuantileSorted(nil, 0.5) != 0 {
		t.Error("QuantileSorted(nil) != 0")
	}
	if QuantileSorted(sorted, -1) != 1 || QuantileSorted(sorted, 2) != 5 {
		t.Error("QuantileSorted clamping wrong")
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Error("Quantile mutated input")
	}
}

func TestSummarize(t *testing.T) {
	f := Summarize([]float64{1, 2, 3, 4, 5})
	if f.Min != 1 || f.Median != 3 || f.Max != 5 || f.Q1 != 2 || f.Q3 != 4 {
		t.Errorf("Summarize = %+v", f)
	}
	if Summarize(nil) != (FiveNum{}) {
		t.Error("Summarize(nil) not zero")
	}
	if f.String() == "" {
		t.Error("FiveNum.String empty")
	}
}

func TestCDF(t *testing.T) {
	c := NewCDF([]float64{10, 20, 30, 40})
	if c.N() != 4 {
		t.Fatal("N wrong")
	}
	cases := []struct{ x, want float64 }{
		{5, 0}, {10, 0.25}, {25, 0.5}, {40, 1}, {100, 1},
	}
	for _, cse := range cases {
		if got := c.At(cse.x); got != cse.want {
			t.Errorf("At(%v) = %v, want %v", cse.x, got, cse.want)
		}
	}
	if c.Inverse(0.5) != 20 || c.Inverse(1) != 40 || c.Inverse(0) != 10 {
		t.Errorf("Inverse wrong: %v %v %v", c.Inverse(0.5), c.Inverse(1), c.Inverse(0))
	}
	if c.Max() != 40 {
		t.Error("Max wrong")
	}
}

func TestCDFEmpty(t *testing.T) {
	c := NewCDF(nil)
	if c.At(5) != 0 || c.Inverse(0.5) != 0 || c.Max() != 0 || c.Points(4) != nil {
		t.Error("empty CDF not all-zero")
	}
}

func TestCDFPoints(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4})
	pts := c.Points(4)
	if len(pts) != 4 {
		t.Fatalf("points = %v", pts)
	}
	for i, p := range pts {
		if p[0] != float64(i+1) {
			t.Errorf("point %d = %v", i, p)
		}
	}
}

// Property: quantile is monotone in q and bounded by min/max.
func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(raw []float64, qa, qb float64) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		qa = math.Abs(math.Mod(qa, 1))
		qb = math.Abs(math.Mod(qb, 1))
		if qa > qb {
			qa, qb = qb, qa
		}
		va, vb := Quantile(xs, qa), Quantile(xs, qb)
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		return va <= vb && va >= sorted[0] && vb <= sorted[len(sorted)-1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: CDF.At is within [0,1] and monotone.
func TestCDFMonotoneProperty(t *testing.T) {
	f := func(raw []float64, a, b float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		c := NewCDF(xs)
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		if a > b {
			a, b = b, a
		}
		pa, pb := c.At(a), c.At(b)
		return pa >= 0 && pb <= 1 && pa <= pb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
