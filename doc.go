// Package flexftl is a simulation-backed reproduction of "Improving
// Performance and Lifetime of NAND Storage Systems Using Relaxed Program
// Sequence" (Park, Jeong, Lee, Song, Kim — DAC 2016).
//
// The library models a multi-channel 2-bit MLC NAND device at operation
// granularity, formalizes the paper's program-order constraint sets (FPS and
// the relaxed RPS), implements the RPS-aware flexFTL — two-phase block
// ordering, adaptive LSB/MSB page allocation, per-block parity backup with
// power-off recovery — alongside the paper's three comparison FTLs, and
// regenerates every table and figure of the evaluation.
//
// Layout:
//
//	internal/core        program-sequence formalism (the paper's device-level contribution)
//	internal/nand        NAND device model (geometry, timing, order enforcement, power loss)
//	internal/vth         threshold-voltage reliability Monte-Carlo (Figure 4)
//	internal/ftl/...     the FTL kernel, policy registry and the five FTLs
//	internal/ssd         storage-system runner (buffer, backpressure, idle GC dispatch)
//	internal/workload    the five Table 1 workload generators + trace I/O
//	internal/experiments one driver per table/figure
//	cmd/flexbench        regenerate every table and figure
//	cmd/flexsim          run one FTL x workload
//	cmd/flexrecover      power-off recovery demonstration
//	examples/...         runnable API walkthroughs
//
// The root-level benchmarks (bench_test.go) attach one benchmark to each
// table and figure plus ablations of flexFTL's design choices.
package flexftl
