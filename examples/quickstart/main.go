// Quickstart: build an RPS NAND device, put flexFTL on top, write and read
// some pages, and look at the counters. This is the smallest end-to-end use
// of the library's public surface.
package main

import (
	"fmt"
	"log"

	"flexftl/internal/core"
	"flexftl/internal/ftl"
	"flexftl/internal/ftl/flexftl"
	"flexftl/internal/nand"
	"flexftl/internal/sim"
)

func main() {
	// 1. A NAND device. TestGeometry is a small 2-channel part; the rules
	// decide which page program orders the device accepts — core.RPS is the
	// paper's relaxed sequence, core.FPS the stock vendor sequence.
	dev, err := nand.NewDevice(nand.Config{
		Geometry: nand.TestGeometry(),
		Timing:   nand.DefaultTiming(), // LSB 500us, MSB 2000us, read 40us
		Rules:    core.RPS,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("device :", dev.Geometry(), "-", dev.Rules().Name(), "rules")
	fmt.Printf("asym   : MSB program is %.0fx the LSB program\n", dev.Timing().Asymmetry())

	// 2. flexFTL on top: page-level mapping, 2PO block management, adaptive
	// LSB/MSB allocation, per-block parity backup.
	f, err := flexftl.New(dev, ftl.DefaultConfig(), flexftl.DefaultParams())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("ftl    :", f.Name(), "-", f.LogicalPages(), "logical pages, initial quota", f.InitialQuota())

	// 3. Write a few pages. The third argument is the write-buffer
	// utilization u the policy manager reads: high u -> fast LSB pages,
	// low u -> slow MSB pages.
	now := sim.Time(0)
	for lpn := ftl.LPN(0); lpn < 64; lpn++ {
		now, err = f.Write(lpn, now, 0.9) // burst: prefer LSB
		if err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("wrote  : 64 pages under high utilization in", now)

	// 4. Read them back.
	for lpn := ftl.LPN(0); lpn < 64; lpn++ {
		now, err = f.Read(lpn, now)
		if err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("read   : 64 pages back, done at", now)

	// 5. Counters.
	st := f.Stats()
	fmt.Printf("stats  : %d host writes (%d LSB / %d MSB), %d reads, %d parity backups, quota now %d\n",
		st.HostWrites, st.HostWritesLSB, st.HostWritesMSB, st.HostReads, st.BackupWrites, f.Quota())
}
