// TLC: the paper's Section 1 claim — "our proposed technique can be
// applicable for other NAND devices such as TLC NAND devices with a similar
// program scheme" — run as a working system. A 3-bit device enforces the
// generalized relaxed constraints; the n-phase flexFTL serves a burst on
// fast level-0 pages, then a power cut during the finest refinement destroys
// TWO earlier pages of the word line, and both are rebuilt from their
// per-phase parity pages.
package main

import (
	"fmt"
	"log"

	"flexftl/internal/ftl"
	"flexftl/internal/ftl/nflex"
	"flexftl/internal/nandn"
	"flexftl/internal/sim"
)

func main() {
	g := nandn.TLCGeometry()
	g.BlocksPerChip = 32
	g.WordLinesPerBlock = 8
	dev, err := nandn.NewDevice(g, nandn.TLCTiming())
	if err != nil {
		log.Fatal(err)
	}
	f, err := nflex.New(dev, ftl.DefaultConfig(), nflex.DefaultParams())
	if err != nil {
		log.Fatal(err)
	}
	tm := dev.Timing()
	fmt.Println("device :", g)
	fmt.Printf("timing : level programs %v / %v / %v (the MLC asymmetry, one level deeper)\n\n",
		tm.Prog[0], tm.Prog[1], tm.Prog[2])

	// 1. A saturated burst runs at level-0 speed.
	const burst = 64
	var last sim.Time
	for i := 0; i < burst; i++ {
		done, err := f.Write(ftl.LPN(i), 0, 1.0)
		if err != nil {
			log.Fatal(err)
		}
		if done > last {
			last = done
		}
	}
	fmt.Printf("burst  : %d pages drained in %v — all on level-0 pages (%v each): %v\n",
		burst, last, tm.Prog[0], f.HostWritesByLevel())

	// 2. Push one chip through its refinement phases and cut power during a
	// level-2 (finest) program.
	now := last
	lpn := ftl.LPN(burst)
	for f.Device().BlockProgrammed(0, 0) == 0 || !level2InFlight(f) {
		now, err = f.Write(lpn, now, 0.01) // sleepy buffer -> deep phases
		if err != nil {
			log.Fatal(err)
		}
		lpn++
	}
	n := f.Device().InjectPowerLoss(0, activeLevel2Block(f))
	fmt.Printf("\npower cut during a level-2 refinement: %d pages of the word line destroyed\n", n)
	fmt.Println("(the finest program is destructive to BOTH earlier bits of the cell)")

	// 3. Recovery rebuilds every destroyed page from its phase parity.
	rep, err := f.Recover(now)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovery: %d page reads in %v; recovered LPNs %v, dropped in-flight %v\n",
		rep.PagesRead, rep.Duration(), rep.Recovered, rep.Dropped)
	for _, l := range rep.Recovered {
		if _, err := f.Read(l, rep.End); err != nil {
			log.Fatalf("LPN %d not actually recovered: %v", l, err)
		}
	}
	fmt.Printf("verified: all %d recovered pages read back correctly\n", len(rep.Recovered))
	fmt.Printf("backup cost so far: %d parity pages for %d host writes (per-block-per-phase)\n",
		f.Stats().BackupWrites, f.Stats().HostWrites)
}

func level2InFlight(f *nflex.FTL) bool { return f.ActivePhaseProgress(0, 2) > 0 }

func activeLevel2Block(f *nflex.FTL) int { return f.ActivePhaseBlock(0, 2) }
