// Powerfail: a guided walk through Figure 7 — the per-block parity backup
// (7a) and the reboot-time recovery of a destroyed paired LSB page (7b) —
// on a single chip, narrated step by step.
package main

import (
	"fmt"
	"log"

	"flexftl/internal/core"
	"flexftl/internal/ftl"
	"flexftl/internal/ftl/flexftl"
	"flexftl/internal/nand"
	"flexftl/internal/sim"
)

func main() {
	g := nand.Geometry{
		Channels: 1, ChipsPerChannel: 1, BlocksPerChip: 32,
		WordLinesPerBlock: 4, PageSizeBytes: 64, SpareBytes: 16,
	}
	dev, err := nand.NewDevice(nand.Config{Geometry: g, Timing: nand.DefaultTiming(), Rules: core.RPS})
	if err != nil {
		log.Fatal(err)
	}
	f, err := flexftl.New(dev, ftl.DefaultConfig(), flexftl.DefaultParams())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("a tiny 1-chip device:", g)
	fmt.Println()

	// Figure 7(a): while the LSB pages A..D of the active fast block are
	// written, flexFTL accumulates their XOR in the parity page buffer;
	// writing the last LSB page flushes the parity page to the backup block
	// with the fast block's number in its spare area.
	now := sim.Time(0)
	for lpn := ftl.LPN(0); lpn < ftl.LPN(g.WordLinesPerBlock); lpn++ {
		now, err = f.Write(lpn, now, 0.95)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("write LPN %d -> LSB page of the active fast block (t=%v)\n", lpn, now)
	}
	fmt.Printf("fast block full: parity of its %d LSB pages written to the backup block (backups=%d)\n\n",
		g.WordLinesPerBlock, f.Stats().BackupWrites)

	// The block is now the active slow block; an MSB write begins the
	// destructive phase.
	now, err = f.Write(100, now, 0.01) // low utilization -> MSB page
	if err != nil {
		log.Fatal(err)
	}
	blk := f.ActiveSlowBlock(0)
	wl := f.ActiveSlowProgress(0) - 1
	fmt.Printf("write LPN 100 -> MSB(%d) of slow block %d: the paired LSB data is in its\n", wl, blk)
	fmt.Println("transient state while this 2000us program runs...")

	// Sudden power-off mid-program.
	if !dev.InjectPowerLoss(nand.BlockAddr{Chip: 0, Block: blk}) {
		log.Fatal("no program in flight?")
	}
	lostLPN := ftl.LPN(wl) // LPN wl landed on LSB(wl) above
	if _, err := f.Read(lostLPN, now); err == nil {
		log.Fatal("expected the paired LSB page to be unreadable")
	}
	fmt.Printf("POWER CUT. LSB(%d) is now ECC-uncorrectable; LPN %d's data is physically gone.\n\n", wl, lostLPN)

	// Figure 7(b): reboot. Recovery re-reads the slow block's LSB pages,
	// skips the unreadable one, XORs the survivors with the saved parity
	// page, and re-homes the reconstructed data.
	rep, err := f.Recover(now)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reboot recovery: %d page reads in %v\n", rep.PagesRead, rep.Duration())
	fmt.Printf("  recovered LPNs: %v (rebuilt from parity XOR survivors)\n", rep.Recovered)
	fmt.Printf("  dropped LPNs:   %v (the interrupted, never-acknowledged MSB write)\n", rep.Dropped)
	if _, err := f.Read(lostLPN, rep.End); err != nil {
		log.Fatal("recovered page unreadable: ", err)
	}
	fmt.Printf("LPN %d reads back correctly again.\n", lostLPN)
}
