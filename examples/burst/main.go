// Burst: the Section 1 motivation scenario. A burst of writes arrives in a
// short interval; an FPS FTL must interleave slow MSB programs, while
// flexFTL (RPS + 2PO) services the whole burst on fast LSB pages — peak
// write bandwidth close to SLC speed. The example measures the same burst
// against pageFTL and flexFTL and prints the drain times.
package main

import (
	"fmt"
	"log"

	"flexftl/internal/experiments"
	"flexftl/internal/ftl"
	"flexftl/internal/nand"
	"flexftl/internal/sim"
)

func drainBurst(scheme string, burstPages int) (sim.Time, ftl.Stats) {
	g := nand.Geometry{
		Channels: 2, ChipsPerChannel: 2, BlocksPerChip: 64,
		WordLinesPerBlock: 32, PageSizeBytes: 4096, SpareBytes: 64,
	}
	f, err := experiments.BuildFTL(scheme, g)
	if err != nil {
		log.Fatal(err)
	}
	// All pages of the burst are submitted at t=0 with a saturated buffer
	// (utilization 1.0): the policy manager sees maximum write pressure.
	var last sim.Time
	for i := 0; i < burstPages; i++ {
		done, err := f.Write(ftl.LPN(i), 0, 1.0)
		if err != nil {
			log.Fatal(err)
		}
		if done > last {
			last = done
		}
	}
	return last, f.Stats()
}

func main() {
	const burst = 256 // pages, striped over 4 chips
	fmt.Printf("burst of %d pages submitted at t=0 (4 chips, buffer saturated):\n\n", burst)
	var flexTime sim.Time
	for _, scheme := range []string{"pageFTL", "parityFTL", "rtfFTL", "flexFTL"} {
		drain, st := drainBurst(scheme, burst)
		mbs := float64(burst) * 4096 / (1 << 20) / drain.Seconds()
		fmt.Printf("  %-10s drained in %8v  (%5.1f MB/s)  LSB %3d / MSB %3d, backups %d\n",
			scheme, drain, mbs, st.HostWritesLSB, st.HostWritesMSB, st.BackupWrites)
		if scheme == "flexFTL" {
			flexTime = drain
		}
	}
	fmt.Printf("\nflexFTL serves the burst entirely on LSB pages (%v per page program),\n",
		nand.DefaultTiming().ProgLSB)
	fmt.Printf("so its drain time (%v) approaches the SLC-speed floor; the FPS FTLs\n", flexTime)
	fmt.Println("must spend one 4x-slower MSB program per word line mid-burst.")
}
