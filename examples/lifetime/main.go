// Lifetime: the Figure 8(b) story in miniature — the same write-intensive
// workload against all four MLC FTLs, comparing block erasures and write
// amplification. The backup strategy is the differentiator: pageFTL writes
// no backups (and would lose data on power-off), parityFTL pays one parity
// page per two LSB pages, rtfFTL pays that plus padding, and flexFTL pays a
// single parity page per block.
package main

import (
	"fmt"
	"log"

	"flexftl/internal/experiments"
	"flexftl/internal/ssd"
	"flexftl/internal/workload"
)

func main() {
	geometry := experiments.EvalGeometry()
	prof := workload.NTRX() // write-dominant, very intense
	const requests = 60000

	fmt.Printf("workload: %s (%d requests) on %s\n\n", prof.Name, requests, geometry)
	fmt.Printf("  %-10s %8s %8s %10s %10s %8s\n", "ftl", "erases", "backups", "backup/W", "WA", "IOPS")
	for _, scheme := range experiments.Schemes() {
		f, err := experiments.BuildFTL(scheme, geometry)
		if err != nil {
			log.Fatal(err)
		}
		sys, err := ssd.New(f, ssd.DefaultConfig())
		if err != nil {
			log.Fatal(err)
		}
		if _, err := sys.Prefill(); err != nil {
			log.Fatal(err)
		}
		gen, err := workload.New(prof, f.LogicalPages(), requests, 7)
		if err != nil {
			log.Fatal(err)
		}
		res, err := sys.Run(gen)
		if err != nil {
			log.Fatal(err)
		}
		st := res.Stats
		perHostWrite := float64(st.BackupWrites) / float64(st.HostWrites)
		wear := f.Device().Wear()
		fmt.Printf("  %-10s %8d %8d %10.4f %10.2f %8.0f   wear max/mean %.1fx\n",
			scheme, st.Erases, st.BackupWrites, perHostWrite,
			st.WriteAmplification(), res.Metrics.IOPS, wear.Imbalance)
	}
	fmt.Println("\nflexFTL's per-block parity makes its backup overhead ~1/W per LSB page")
	fmt.Println("(W = LSB pages per block) versus 1/2 for the FPS pre-backup schemes, which")
	fmt.Println("is where its erase-count advantage — device lifetime — comes from.")
}
