// Shard-equivalence guard for the reliability path: with the BER model
// mounted and the kernel's responses enabled on a pre-worn device, RunSharded
// at workers=N must still reproduce workers=1 exactly — read outcomes are a
// pure function of chip-local state (wear, retention age, read-disturb count,
// and the per-read hash), so sharding by channel cannot change them. Run
// under -race this also proves the reliability counters and the lost-page pin
// share no unsynchronized state. The disabled path needs no new guard: with
// Config.Reliability nil the kernel byte-matches the pre-reliability goldens
// (equivalence_test.go).
package flexftl_test

import (
	"fmt"
	"reflect"
	"testing"

	"flexftl/internal/experiments"
	"flexftl/internal/ftl"
	"flexftl/internal/nand"
	"flexftl/internal/rel"
	"flexftl/internal/ssd"
	"flexftl/internal/workload"
)

// buildRelShardSystem builds a scheme over a reliability-modelled device,
// pre-wears every block so the model's retry ladder actually engages during
// the run, and prefills.
func buildRelShardSystem(t *testing.T, scheme string, preWear int) (*ssd.System, ftl.Host) {
	t.Helper()
	g := experiments.EvalGeometry()
	g.BlocksPerChip = 32
	rc := rel.DefaultConfig(7)
	cfg := ftl.DefaultConfig()
	cfg.Reliability = ftl.DefaultRelPolicy()
	h, err := ftl.Build(scheme, ftl.BuildEnv{
		Geometry:    g,
		Config:      cfg,
		Flex:        ftl.DefaultFlexParams(),
		Reliability: &rc,
	})
	if err != nil {
		t.Fatal(err)
	}
	dev := h.(ftl.FTL).Device()
	for chip := 0; chip < g.Chips(); chip++ {
		for blk := 0; blk < g.BlocksPerChip; blk++ {
			a := nand.BlockAddr{Chip: chip, Block: blk}
			for i := 0; i < preWear; i++ {
				if _, err := dev.Erase(a, 0); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	sysCfg := ssd.DefaultConfig()
	sysCfg.PrefillFraction = 0.88
	sysCfg.BufferPages = 512
	sys, err := ssd.New(h, sysCfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Prefill(); err != nil {
		t.Fatal(err)
	}
	return sys, h
}

// TestShardEquivalenceReliability pins RunSharded(N) == RunSharded(1) with
// the reliability loop live, and that the comparison is non-vacuous: the runs
// must classify reads and exercise the retry ladder.
func TestShardEquivalenceReliability(t *testing.T) {
	const preWear = 6000
	for _, scheme := range []string{"pageFTL", "flexFTL"} {
		scheme := scheme
		t.Run(scheme, func(t *testing.T) {
			capture := func(workers int) shardSnapshot {
				sys, h := buildRelShardSystem(t, scheme, preWear)
				gen, err := workload.New(workload.Fileserver(), h.LogicalPages(), 8000, 42)
				if err != nil {
					t.Fatal(err)
				}
				run, err := sys.RunSharded(gen, workers)
				if err != nil {
					t.Fatal(err)
				}
				return snapshotOutcome(h, run)
			}
			serial := capture(1)
			rep := serial.Run.Reliability
			if rep == nil {
				t.Fatal("reliability-modelled run produced no reliability report")
			}
			if rep.Reads == 0 || rep.RetriedReads == 0 {
				t.Fatalf("pre-worn run never engaged the retry ladder — the guard is vacuous (report %+v)", rep)
			}
			for _, workers := range []int{2, 4} {
				sharded := capture(workers)
				if !reflect.DeepEqual(serial, sharded) {
					t.Errorf("workers=%d diverged from workers=1:\nserial:  %s\nsharded: %s",
						workers, relSnapString(serial), relSnapString(sharded))
				}
			}
		})
	}
}

// relSnapString renders a snapshot with the reliability report dereferenced
// (the default %+v prints the pointer, useless in a diff).
func relSnapString(s shardSnapshot) string {
	return fmt.Sprintf("{run=%+v rel=%+v maphash=%d free=%d counts=%+v}",
		s.Run.Stats, s.Run.Reliability, s.MapHash, s.FreeBlocks, s.Counts)
}
