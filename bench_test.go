// Benchmarks regenerating the paper's tables and figures, one per exhibit,
// plus ablations of flexFTL's design choices. Each benchmark reports the
// simulated quantity as a custom metric (sim-*, next to the usual ns/op of
// simulator CPU cost), so `go test -bench=. -benchmem` doubles as a compact
// results table.
package flexftl_test

import (
	"fmt"
	"testing"

	"flexftl/internal/core"
	"flexftl/internal/experiments"
	"flexftl/internal/ftl"
	"flexftl/internal/ftl/flexftl"
	"flexftl/internal/ftl/nflex"
	"flexftl/internal/nand"
	"flexftl/internal/nandn"
	"flexftl/internal/parity"
	"flexftl/internal/rng"
	"flexftl/internal/sim"
	"flexftl/internal/ssd"
	"flexftl/internal/stats"
	"flexftl/internal/vth"
	"flexftl/internal/workload"
)

// benchGeometry keeps per-iteration simulation cost low while retaining the
// multi-chip structure the FTLs exploit.
func benchGeometry() nand.Geometry {
	return nand.Geometry{
		Channels: 2, ChipsPerChannel: 2, BlocksPerChip: 64,
		WordLinesPerBlock: 16, PageSizeBytes: 4096, SpareBytes: 64,
	}
}

// BenchmarkFig1ProgramLatency measures the device-level program asymmetry of
// Figure 1: the virtual-time cost of LSB vs MSB page programs.
func BenchmarkFig1ProgramLatency(b *testing.B) {
	for _, typ := range []core.PageType{core.LSB, core.MSB} {
		b.Run(typ.String(), func(b *testing.B) {
			dev, err := nand.NewDevice(nand.Config{
				Geometry: benchGeometry(), Timing: nand.DefaultTiming(), Rules: core.RPS,
			})
			if err != nil {
				b.Fatal(err)
			}
			g := dev.Geometry()
			order := core.FPSOrder(g.WordLinesPerBlock)
			var total sim.Time
			n := 0
			now := sim.Time(0)
			blk, pos := 0, 0
			wrapped := false
			for i := 0; i < b.N; i++ {
				if pos == len(order) {
					blk, pos = blk+1, 0
					if blk == g.BlocksPerChip {
						blk, wrapped = 0, true
					}
					if wrapped {
						// Recycle: erase the block before refilling it.
						done, err := dev.Erase(nand.BlockAddr{Chip: 0, Block: blk}, now)
						if err != nil {
							b.Fatal(err)
						}
						now = done
					}
				}
				p := order[pos]
				pos++
				start := now
				done, err := dev.Program(nand.PageAddr{
					BlockAddr: nand.BlockAddr{Chip: 0, Block: blk}, Page: p,
				}, []byte{1}, nil, now)
				if err != nil {
					b.Fatal(err)
				}
				now = done
				if p.Type == typ {
					total += done - start
					n++
				}
			}
			if n > 0 {
				b.ReportMetric(float64(total)/float64(n), "sim-us/program")
			}
		})
	}
}

// BenchmarkFig4aWPi runs the Figure 4(a) Monte-Carlo (one block per
// iteration) and reports the median WPi width sum per order.
func BenchmarkFig4aWPi(b *testing.B) {
	benchFig4(b, vth.Fresh, func(res vth.BlockResult) (float64, string) {
		return stats.Summarize(res.WPSums()).Median, "sim-WPi-V"
	})
}

// BenchmarkFig4bBER runs the Figure 4(b) Monte-Carlo at the worst-case
// operating condition and reports the median per-page BER.
func BenchmarkFig4bBER(b *testing.B) {
	benchFig4(b, vth.WorstCase, func(res vth.BlockResult) (float64, string) {
		return stats.Summarize(res.BERs()).Median, "sim-BER"
	})
}

func benchFig4(b *testing.B, stress vth.StressCondition, metric func(vth.BlockResult) (float64, string)) {
	const wl = 32
	params := vth.DefaultParams()
	params.CellsPerWordLine = 512
	model, err := vth.NewModel(params)
	if err != nil {
		b.Fatal(err)
	}
	for _, o := range []struct {
		name  string
		pages []core.Page
	}{
		{"FPS", core.FPSOrder(wl)},
		{"RPSfull", core.RPSFullOrder(wl)},
		{"RPShalf", core.RPSHalfOrder(wl)},
	} {
		b.Run(o.name, func(b *testing.B) {
			var last float64
			var unit string
			for i := 0; i < b.N; i++ {
				res, err := model.SimulateBlock(wl, o.pages, stress, rng.New(uint64(i)))
				if err != nil {
					b.Fatal(err)
				}
				last, unit = metric(res)
			}
			b.ReportMetric(last, unit)
		})
	}
}

// BenchmarkTable1Workloads generates each Table 1 workload and reports its
// measured read fraction.
func BenchmarkTable1Workloads(b *testing.B) {
	for _, p := range workload.All() {
		p := p
		b.Run(p.Name, func(b *testing.B) {
			reads, total := 0, 0
			for i := 0; i < b.N; i++ {
				gen, err := workload.New(p, 1<<20, 2000, uint64(i))
				if err != nil {
					b.Fatal(err)
				}
				for {
					req, ok := gen.Next()
					if !ok {
						break
					}
					total++
					if req.Op == workload.OpRead {
						reads++
					}
				}
			}
			b.ReportMetric(float64(reads)/float64(total), "sim-read-frac")
		})
	}
}

// runCell runs one (scheme, workload) simulation at bench scale.
func runCell(b *testing.B, scheme string, prof workload.Profile, requests int) ssd.RunResult {
	b.Helper()
	f, err := experiments.BuildFTL(scheme, benchGeometry())
	if err != nil {
		b.Fatal(err)
	}
	sys, err := ssd.New(f, ssd.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	if _, err := sys.Prefill(); err != nil {
		b.Fatal(err)
	}
	gen, err := workload.New(prof, f.LogicalPages(), requests, 42)
	if err != nil {
		b.Fatal(err)
	}
	res, err := sys.Run(gen)
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkFig8aIOPS reproduces Figure 8(a) at bench scale: one sub-benchmark
// per FTL x workload, reporting simulated IOPS.
func BenchmarkFig8aIOPS(b *testing.B) {
	for _, scheme := range experiments.Schemes() {
		for _, prof := range workload.All() {
			scheme, prof := scheme, prof
			b.Run(scheme+"/"+prof.Name, func(b *testing.B) {
				var last ssd.RunResult
				for i := 0; i < b.N; i++ {
					last = runCell(b, scheme, prof, 6000)
				}
				b.ReportMetric(last.Metrics.IOPS, "sim-IOPS")
			})
		}
	}
}

// BenchmarkFig8bErasures reproduces Figure 8(b) at bench scale, reporting
// block erasures per 1000 host writes.
func BenchmarkFig8bErasures(b *testing.B) {
	for _, scheme := range experiments.Schemes() {
		scheme := scheme
		b.Run(scheme+"/NTRX", func(b *testing.B) {
			var last ssd.RunResult
			for i := 0; i < b.N; i++ {
				last = runCell(b, scheme, workload.NTRX(), 6000)
			}
			st := last.Stats
			if st.HostWrites > 0 {
				b.ReportMetric(1000*float64(st.Erases)/float64(st.HostWrites), "sim-erases/kwrite")
			}
		})
	}
}

// BenchmarkFig8cBandwidthCDF reproduces Figure 8(c) at bench scale,
// reporting the p99 (peak) write bandwidth under Varmail.
func BenchmarkFig8cBandwidthCDF(b *testing.B) {
	for _, scheme := range experiments.Schemes() {
		scheme := scheme
		b.Run(scheme+"/Varmail", func(b *testing.B) {
			var last ssd.RunResult
			for i := 0; i < b.N; i++ {
				last = runCell(b, scheme, workload.Varmail(), 6000)
			}
			b.ReportMetric(last.Metrics.PeakWriteBandwidthMBs, "sim-peakMB/s")
		})
	}
}

// BenchmarkRecovery measures the Section 3.3 reboot procedure: pages read
// and virtual duration of one recovery pass after a power cut.
func BenchmarkRecovery(b *testing.B) {
	var rep flexftl.RecoveryReport
	for i := 0; i < b.N; i++ {
		f, err := experiments.BuildFTL("flexFTL", benchGeometry())
		if err != nil {
			b.Fatal(err)
		}
		flex := f.(*flexftl.FTL)
		g := f.Device().Geometry()
		now := sim.Time(0)
		lpn := ftl.LPN(0)
		for j := 0; j < g.Chips()*g.LSBPagesPerBlock(); j++ {
			now, err = f.Write(lpn, now, 0.95)
			if err != nil {
				b.Fatal(err)
			}
			lpn++
		}
		for flex.ActiveSlowProgress(0) == 0 {
			now, err = f.Write(lpn, now, 0.01)
			if err != nil {
				b.Fatal(err)
			}
			lpn++
		}
		f.Device().InjectPowerLoss(nand.BlockAddr{Chip: 0, Block: flex.ActiveSlowBlock(0)})
		rep, err = flex.Recover(now)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(rep.PagesRead), "sim-pages-read")
	b.ReportMetric(rep.Duration().Millis(), "sim-reboot-ms")
}

// BenchmarkAblationQuota varies the LSB quota of Section 3.2: a tiny quota
// degrades flexFTL to FPS-like alternation, the paper's 5% serves bursts,
// and an effectively unbounded quota risks free-pool exhaustion cliffs.
func BenchmarkAblationQuota(b *testing.B) {
	for _, cfg := range []struct {
		name     string
		fraction float64
	}{
		{"tiny-0.1pct", 0.001},
		{"paper-5pct", 0.05},
		{"huge-100pct", 1.0},
	} {
		cfg := cfg
		b.Run(cfg.name, func(b *testing.B) {
			var last ssd.RunResult
			for i := 0; i < b.N; i++ {
				last = runFlexVariant(b, func(p *flexftl.Params) { p.QuotaFraction = cfg.fraction })
			}
			b.ReportMetric(last.Metrics.IOPS, "sim-IOPS")
			b.ReportMetric(last.Metrics.PeakWriteBandwidthMBs, "sim-peakMB/s")
		})
	}
}

// BenchmarkAblationBGCCopyType compares background-GC relocation through MSB
// pages (the paper's design, replenishing q) against LSB pages.
func BenchmarkAblationBGCCopyType(b *testing.B) {
	for _, cfg := range []struct {
		name   string
		viaLSB bool
	}{
		{"MSB-paper", false},
		{"LSB-ablation", true},
	} {
		cfg := cfg
		b.Run(cfg.name, func(b *testing.B) {
			var last ssd.RunResult
			for i := 0; i < b.N; i++ {
				last = runFlexVariant(b, func(p *flexftl.Params) { p.BGCCopyLSB = cfg.viaLSB })
			}
			b.ReportMetric(last.Metrics.IOPS, "sim-IOPS")
			st := last.Stats
			b.ReportMetric(float64(st.HostWritesLSB)/float64(st.HostWrites), "sim-host-LSB-frac")
		})
	}
}

// BenchmarkAblationPredictiveBGC compares the fixed reclaim cushion against
// the Section 6 future-write-predictor extension on bursty traffic.
func BenchmarkAblationPredictiveBGC(b *testing.B) {
	for _, cfg := range []struct {
		name       string
		predictive bool
	}{
		{"fixed-cushion", false},
		{"predictive", true},
	} {
		cfg := cfg
		b.Run(cfg.name, func(b *testing.B) {
			var last ssd.RunResult
			for i := 0; i < b.N; i++ {
				last = runFlexVariant(b, func(p *flexftl.Params) { p.PredictiveBGC = cfg.predictive })
			}
			b.ReportMetric(last.Metrics.IOPS, "sim-IOPS")
			b.ReportMetric(float64(last.Stats.ForegroundGCs), "sim-fg-GCs")
		})
	}
}

// BenchmarkAblationBackupScheme quantifies the per-block parity advantage:
// backup page programs per host write for each FTL's scheme.
func BenchmarkAblationBackupScheme(b *testing.B) {
	for _, scheme := range []string{"parityFTL", "rtfFTL", "flexFTL"} {
		scheme := scheme
		b.Run(scheme, func(b *testing.B) {
			var last ssd.RunResult
			for i := 0; i < b.N; i++ {
				last = runCell(b, scheme, workload.NTRX(), 6000)
			}
			st := last.Stats
			b.ReportMetric(float64(st.BackupWrites)/float64(st.HostWrites), "sim-backup/write")
		})
	}
}

func runFlexVariant(b *testing.B, mutate func(*flexftl.Params)) ssd.RunResult {
	b.Helper()
	dev, err := nand.NewDevice(nand.Config{
		Geometry: benchGeometry(), Timing: nand.DefaultTiming(), Rules: core.RPS,
	})
	if err != nil {
		b.Fatal(err)
	}
	params := flexftl.DefaultParams()
	mutate(&params)
	f, err := flexftl.New(dev, ftl.DefaultConfig(), params)
	if err != nil {
		b.Fatal(err)
	}
	sys, err := ssd.New(f, ssd.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	if _, err := sys.Prefill(); err != nil {
		b.Fatal(err)
	}
	gen, err := workload.New(workload.Varmail(), f.LogicalPages(), 6000, 42)
	if err != nil {
		b.Fatal(err)
	}
	res, err := sys.Run(gen)
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkSSDRun is the end-to-end hot-path benchmark: one full
// prefill+workload simulation per iteration for each FTL, reporting the
// simulator's wall-clock throughput in host pages per second next to
// allocations per run. This is the number the single-run optimizations
// (victim index, scratch reuse) move.
func BenchmarkSSDRun(b *testing.B) {
	for _, scheme := range experiments.Schemes() {
		scheme := scheme
		b.Run(scheme, func(b *testing.B) {
			b.ReportAllocs()
			var pages int64
			for i := 0; i < b.N; i++ {
				res := runCell(b, scheme, workload.NTRX(), 6000)
				pages += res.Stats.HostWrites + res.Stats.HostReads
			}
			if s := b.Elapsed().Seconds(); s > 0 {
				b.ReportMetric(float64(pages)/s, "pages/s")
			}
		})
	}
}

// shardBenchGeometry widens the channel count to 4 (the evaluation
// geometry's) so the epoch-sharded engine has enough independent shards to
// spread over the worker pool; benchGeometry's 2 channels would cap the
// speedup at 2x regardless of workers.
func shardBenchGeometry() nand.Geometry {
	return nand.Geometry{
		Channels: 4, ChipsPerChannel: 2, BlocksPerChip: 64,
		WordLinesPerBlock: 16, PageSizeBytes: 4096, SpareBytes: 64,
	}
}

// BenchmarkSSDRunSharded measures the epoch-sharded engine against the
// serial delegation at workers=1, one full prefill+workload simulation per
// iteration on flexFTL. Run with -cpu 1,4 to sweep the host parallelism:
// the -N suffix Go appends to each row IS the GOMAXPROCS of that run
// (sub-benchmark names are fixed at discovery, so GOMAXPROCS cannot go in
// the name itself); bench.sh rewrites that suffix into a /procsN segment
// for this family instead of stripping it. The w1 row is the no-regression
// guard against BenchmarkSSDRun; the wN rows only beat it when GOMAXPROCS
// and the host core count allow real parallelism.
func BenchmarkSSDRunSharded(b *testing.B) {
	for _, workers := range []int{1, 2, 4} {
		workers := workers
		b.Run(fmt.Sprintf("flexFTL/w%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			var pages int64
			for i := 0; i < b.N; i++ {
				f, err := experiments.BuildFTL("flexFTL", shardBenchGeometry())
				if err != nil {
					b.Fatal(err)
				}
				sys, err := ssd.New(f, ssd.DefaultConfig())
				if err != nil {
					b.Fatal(err)
				}
				if _, err := sys.Prefill(); err != nil {
					b.Fatal(err)
				}
				gen, err := workload.New(workload.NTRX(), f.LogicalPages(), 6000, 42)
				if err != nil {
					b.Fatal(err)
				}
				res, err := sys.RunSharded(gen, workers)
				if err != nil {
					b.Fatal(err)
				}
				pages += res.Stats.HostWrites + res.Stats.HostReads
			}
			if s := b.Elapsed().Seconds(); s > 0 {
				b.ReportMetric(float64(pages)/s, "pages/s")
			}
		})
	}
}

// BenchmarkPickVictim isolates the victim-selection cost on a standalone pool
// over synthetic valid counts: the indexed picker should stay flat as the
// full list grows from 64 to 4096 blocks while the reference linear scan
// grows proportionally. Both modes run the identical per-iteration churn —
// invalidate one page of the youngest block, pick, revalidate. Churning the
// youngest (maximum-stamp) block keeps the bucket re-insert O(1) in both
// modes, so the measured difference is purely the pick.
func BenchmarkPickVictim(b *testing.B) {
	for _, mode := range []struct {
		name string
		ref  bool
	}{{"indexed", false}, {"reference", true}} {
		for _, n := range []int{64, 256, 1024, 4096} {
			mode, n := mode, n
			// The size spells out "blocks" so bench.sh's -procs suffix
			// stripping cannot eat a trailing bare number.
			b.Run(fmt.Sprintf("%s/%dblocks", mode.name, n), func(b *testing.B) {
				const ppb = 16
				valid := make([]int, n+8)
				p := ftl.NewFreePool(0, n+8)
				p.Reference = mode.ref
				p.Bind(ppb, func(blk int) int { return valid[blk] })
				blks := make([]int, 0, n)
				for i := 0; i < n; i++ {
					blk, ok := p.PopFree()
					if !ok {
						b.Fatal("pool exhausted")
					}
					valid[blk] = 1 + (i*7)%(ppb-1)
					p.PushFull(blk)
					blks = append(blks, blk)
				}
				hot := blks[n-1]
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					valid[hot]--
					p.NoteValidChange(hot)
					if _, ok := p.PickVictim(); !ok {
						b.Fatal("no victim")
					}
					valid[hot]++
					p.NoteValidChange(hot)
				}
			})
		}
	}
}

// BenchmarkMapperUpdate and BenchmarkParityAccumulate keep an eye on the two
// hottest data-structure paths of the simulator itself.
func BenchmarkMapperUpdate(b *testing.B) {
	g := benchGeometry()
	m := ftl.NewMapper(g, int64(g.TotalPages()/2))
	logical := m.LogicalPages()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lpn := ftl.LPN(i % int(logical))
		ppn := nand.PPN(i % g.TotalPages())
		if old, ok := m.LPNAt(ppn); ok {
			m.Invalidate(old)
		}
		m.Update(lpn, ppn)
	}
}

func BenchmarkParityAccumulate(b *testing.B) {
	buf := make([]byte, ftl.TokenSize)
	acc := parity.New(ftl.TokenSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf[0] = byte(i)
		if err := acc.Add(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTLCExtension measures the n-phase flexFTL on a 3-bit device: the
// level-0 burst drain rate vs the finest level's, plus backup overhead —
// the Section 1 applicability claim in numbers.
func BenchmarkTLCExtension(b *testing.B) {
	b.Run("burst-drain", func(b *testing.B) {
		var perPage float64
		for i := 0; i < b.N; i++ {
			g := nandn.TLCGeometry()
			dev, err := nandn.NewDevice(g, nandn.TLCTiming())
			if err != nil {
				b.Fatal(err)
			}
			f, err := nflex.New(dev, ftl.DefaultConfig(), nflex.DefaultParams())
			if err != nil {
				b.Fatal(err)
			}
			const burst = 256
			var last sim.Time
			for j := 0; j < burst; j++ {
				done, err := f.Write(ftl.LPN(j), 0, 1.0)
				if err != nil {
					b.Fatal(err)
				}
				if done > last {
					last = done
				}
			}
			perPage = float64(last) / burst
		}
		b.ReportMetric(perPage, "sim-us/page")
	})
	b.Run("backup-overhead", func(b *testing.B) {
		var overhead float64
		for i := 0; i < b.N; i++ {
			g := nandn.TLCGeometry()
			dev, err := nandn.NewDevice(g, nandn.TLCTiming())
			if err != nil {
				b.Fatal(err)
			}
			f, err := nflex.New(dev, ftl.DefaultConfig(), nflex.DefaultParams())
			if err != nil {
				b.Fatal(err)
			}
			src := rng.New(uint64(i))
			logical := f.LogicalPages()
			now := sim.Time(0)
			for j := int64(0); j < logical; j++ {
				now, err = f.Write(ftl.LPN(src.Int63n(logical)), now, src.Float64())
				if err != nil {
					b.Fatal(err)
				}
			}
			st := f.Stats()
			overhead = float64(st.BackupWrites) / float64(st.HostWrites)
		}
		b.ReportMetric(overhead, "sim-backup/write")
	})
}

// BenchmarkSimulateBlock pins the allocation-lean refactor: the legacy
// allocate-per-call path against the reusable-arena path, same RNG stream
// and results.
func BenchmarkSimulateBlock(b *testing.B) {
	const wl = 32
	params := vth.DefaultParams()
	params.CellsPerWordLine = 512
	model, err := vth.NewModel(params)
	if err != nil {
		b.Fatal(err)
	}
	order := core.RPSFullOrder(wl)
	b.Run("legacy", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := model.SimulateBlock(wl, order, vth.WorstCase, rng.New(uint64(i))); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("arena", func(b *testing.B) {
		a := vth.NewArena()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := model.SimulateBlockArena(wl, order, vth.WorstCase, rng.New(uint64(i)), a); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkDeviceRead compares the copying page read against the
// caller-buffer variant the FTL hot paths use.
func BenchmarkDeviceRead(b *testing.B) {
	dev, err := nand.NewDevice(nand.Config{
		Geometry: benchGeometry(), Timing: nand.DefaultTiming(), Rules: core.RPS,
	})
	if err != nil {
		b.Fatal(err)
	}
	a := nand.PageAddr{BlockAddr: nand.BlockAddr{Chip: 0, Block: 0}, Page: core.Page{WL: 0, Type: core.LSB}}
	payload := make([]byte, 4096)
	if _, err := dev.Program(a, payload, []byte{1, 2}, 0); err != nil {
		b.Fatal(err)
	}
	b.Run("copy", func(b *testing.B) {
		b.ReportAllocs()
		now := sim.Time(0)
		for i := 0; i < b.N; i++ {
			_, _, done, err := dev.Read(a, now)
			if err != nil {
				b.Fatal(err)
			}
			now = done
		}
	})
	b.Run("zerocopy", func(b *testing.B) {
		var buf nand.PageBuf
		b.ReportAllocs()
		now := sim.Time(0)
		for i := 0; i < b.N; i++ {
			done, err := dev.ReadInto(a, &buf, now)
			if err != nil {
				b.Fatal(err)
			}
			now = done
		}
	})
}

// BenchmarkRunFig4 measures the Figure 4 driver end to end, serial vs the
// full worker pool. The two produce byte-identical results; the ratio is
// the experiment engine's speedup on this machine.
func BenchmarkRunFig4(b *testing.B) {
	cfg := experiments.Fig4Config{
		Blocks: 8, WordLines: 16, Cells: 256, Seed: 5, IncludeWorstCase: true,
	}
	for _, w := range []struct {
		name    string
		workers int
	}{
		{"serial", 1},
		{"parallel", 0},
	} {
		b.Run(w.name, func(b *testing.B) {
			cfg := cfg
			cfg.Workers = w.workers
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := experiments.RunFig4(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRunFig8 measures the evaluation matrix end to end, serial vs the
// full worker pool.
func BenchmarkRunFig8(b *testing.B) {
	cfg := experiments.Fig8Config{Geometry: benchGeometry(), Requests: 2000, Seed: 7}
	for _, w := range []struct {
		name    string
		workers int
	}{
		{"serial", 1},
		{"parallel", 0},
	} {
		b.Run(w.name, func(b *testing.B) {
			cfg := cfg
			cfg.Workers = w.workers
			for i := 0; i < b.N; i++ {
				if _, err := experiments.RunFig8(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
