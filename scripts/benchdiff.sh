#!/bin/sh
# Compares two bench.sh JSON snapshots benchmark by benchmark.
#
#   scripts/benchdiff.sh OLD.json NEW.json
#
# Prints ns/op, B/op, and allocs/op for every benchmark present in either
# snapshot, with the percentage delta for those present in both. Report-only:
# the exit status is always 0, so CI can surface regressions without gating
# on machine-dependent timings.
set -eu
if [ $# -ne 2 ]; then
    echo "usage: $0 OLD.json NEW.json" >&2
    exit 2
fi
old="$1"
new="$2"

# The snapshots are the fixed shape bench.sh emits: one benchmark object per
# line. Extract "name ns bytes allocs" rows with awk rather than a JSON tool
# so the script runs anywhere sh and awk do.
extract() {
    awk '
      /"name":/ {
        line = $0
        name = line; sub(/.*"name": *"/, "", name); sub(/".*/, "", name)
        ns = line; sub(/.*"ns_per_op": */, "", ns); sub(/[,}].*/, "", ns)
        bop = line; sub(/.*"bytes_per_op": */, "", bop); sub(/[,}].*/, "", bop)
        al = line; sub(/.*"allocs_per_op": */, "", al); sub(/[,}].*/, "", al)
        print name, ns, bop, al
      }
    ' "$1"
}

{
    extract "$old" | sed 's/^/OLD /'
    extract "$new" | sed 's/^/NEW /'
} | awk '
  $1 == "OLD" { oldns[$2] = $3; oldb[$2] = $4; olda[$2] = $5; names[$2] = 1 }
  $1 == "NEW" { newns[$2] = $3; newb[$2] = $4; newa[$2] = $5; names[$2] = 1 }
  function delta(o, n) {
    if (o == "" || n == "" || o == "null" || n == "null" || o + 0 == 0) return "     -"
    return sprintf("%+6.1f%%", 100 * (n - o) / o)
  }
  function cell(v) { return (v == "" || v == "null") ? "-" : v }
  END {
    printf "%-55s %12s %12s %8s %10s %8s\n", "benchmark", "old ns/op", "new ns/op", "delta", "allocs", "delta"
    for (n in names) order[++cnt] = n
    # Insertion order of awk arrays is unspecified; sort by name for a
    # stable, diffable report.
    for (i = 1; i < cnt; i++)
      for (j = i + 1; j <= cnt; j++)
        if (order[j] < order[i]) { t = order[i]; order[i] = order[j]; order[j] = t }
    for (i = 1; i <= cnt; i++) {
      n = order[i]
      printf "%-55s %12s %12s %8s %5s>%-5s %8s\n", n,
        cell(oldns[n]), cell(newns[n]), delta(oldns[n], newns[n]),
        cell(olda[n]), cell(newa[n]), delta(olda[n], newa[n])
    }
  }
'
