#!/bin/sh
# Runs the performance-tracking benchmarks and writes a JSON snapshot.
#
#   scripts/bench.sh [output.json]
#
# The benchmark set pairs each optimized path with its baseline
# (SimulateBlock legacy/arena, DeviceRead copy/zerocopy, RunFig4 and
# RunFig8 at workers-1/workers-auto, PickVictim indexed/reference) plus the
# MapperUpdate hot path and the end-to-end SSDRun family, so a snapshot from
# any machine carries its own before/after comparison. Compare two snapshots
# with scripts/benchdiff.sh.
set -eu
out="${1:-BENCH_PR6.json}"
pattern='BenchmarkSimulateBlock|BenchmarkDeviceRead|BenchmarkRunFig4|BenchmarkRunFig8$|BenchmarkMapperUpdate|BenchmarkSSDRun|BenchmarkPickVictim'
benchtime="${BENCHTIME:-20x}"

raw=$(go test -run=NONE -bench="$pattern" -benchmem -benchtime="$benchtime" .)
echo "$raw"

echo "$raw" | awk -v nproc="$(nproc)" '
  /^cpu:/ { sub(/^cpu: */, ""); cpu = $0 }
  /^Benchmark/ {
    name = $1; sub(/-[0-9]+$/, "", name)
    ns = $3; bop = "null"; allocs = "null"
    for (i = 4; i <= NF; i++) {
      if ($(i+1) == "B/op") bop = $i
      if ($(i+1) == "allocs/op") allocs = $i
    }
    if (n++) printf ",\n"
    printf "    {\"name\": \"%s\", \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", \
      name, ns, bop, allocs
  }
  END {
    printf "\n  ],\n  \"cpu\": \"%s\",\n  \"cores\": %s\n}\n", cpu, nproc
  }
  BEGIN { printf "{\n  \"benchmarks\": [\n" }
' > "$out"
echo "wrote $out"
