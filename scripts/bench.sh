#!/bin/sh
# Runs the performance-tracking benchmarks and writes a JSON snapshot.
#
#   scripts/bench.sh [output.json]
#
# The benchmark set pairs each optimized path with its baseline
# (SimulateBlock legacy/arena, DeviceRead copy/zerocopy, RunFig4 and
# RunFig8 at workers-1/workers-auto, PickVictim indexed/reference) plus the
# MapperUpdate hot path and the end-to-end SSDRun family, so a snapshot from
# any machine carries its own before/after comparison. The epoch-sharded
# engine (SSDRunSharded) runs in a second pass under -cpu 1,4 so every
# snapshot pins the 1-vs-N scaling of its host; for that family the -N
# GOMAXPROCS suffix is rewritten into a /procsN name segment (instead of
# stripped) so the cpu sweep's rows keep distinct names. Compare two
# snapshots with scripts/benchdiff.sh.
set -eu
out="${1:-BENCH_PR10.json}"
cores="$(nproc)"
cores_warning=false
if [ "$cores" -le 1 ]; then
  cores_warning=true
  echo "WARNING: this runner exposes a single core — the shard-scaling rows" >&2
  echo "         (SSDRunSharded -cpu 4, RunFig8 workers-auto) cannot show any" >&2
  echo "         parallel speedup here; treat their ratios as meaningless and" >&2
  echo "         re-collect on a multi-core machine before drawing conclusions." >&2
fi
pattern='BenchmarkSimulateBlock|BenchmarkDeviceRead|BenchmarkRunFig4|BenchmarkRunFig8$|BenchmarkMapperUpdate|BenchmarkSSDRun$|BenchmarkPickVictim'
benchtime="${BENCHTIME:-20x}"

raw=$(go test -run=NONE -bench="$pattern" -benchmem -benchtime="$benchtime" .)
echo "$raw"
rawsharded=$(go test -run=NONE -bench='BenchmarkSSDRunSharded' -benchmem -benchtime="$benchtime" -cpu 1,4 .)
echo "$rawsharded"

printf '%s\n%s\n' "$raw" "$rawsharded" | awk \
  -v nproc="$cores" -v gomaxprocs="${GOMAXPROCS:-$cores}" -v coreswarn="$cores_warning" '
  /^cpu:/ { sub(/^cpu: */, ""); cpu = $0 }
  /^Benchmark/ {
    name = $1
    if (name ~ /^BenchmarkSSDRunSharded\//) {
      procs = "1"
      if (match(name, /-[0-9]+$/)) {
        procs = substr(name, RSTART + 1)
        name = substr(name, 1, RSTART - 1)
      }
      name = name "/procs" procs
    } else {
      sub(/-[0-9]+$/, "", name)
    }
    ns = $3; bop = "null"; allocs = "null"
    for (i = 4; i <= NF; i++) {
      if ($(i+1) == "B/op") bop = $i
      if ($(i+1) == "allocs/op") allocs = $i
    }
    if (n++) printf ",\n"
    printf "    {\"name\": \"%s\", \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", \
      name, ns, bop, allocs
  }
  END {
    printf "\n  ],\n  \"cpu\": \"%s\",\n  \"cores\": %s,\n  \"gomaxprocs\": %s,\n  \"cores_warning\": %s\n}\n", cpu, nproc, gomaxprocs, coreswarn
  }
  BEGIN { printf "{\n  \"benchmarks\": [\n" }
' > "$out"
echo "wrote $out"
