// Shard-equivalence guard for the epoch-sharded run engine: for every
// registry scheme, RunSharded at workers=N must produce exactly the result
// of workers=1 (which delegates to the serial Run) — metrics, stats,
// latency percentiles, final mapping state, free blocks and device op
// counts, compared with reflect.DeepEqual. Run under -race this also proves
// the shard workers share no unsynchronized state.
//
// The workload matrix covers the planner's hard regimes: the two serial
// equivalence-golden workloads, the GC-steady-state write-heavy Fileserver
// (GC pre-runs), and a trim-heavy profile (sharded trim replay). The serial
// goldens themselves are pinned by equivalence_test.go; this file extends
// the contract from across-task determinism (PR 2) to inside a run.
package flexftl_test

import (
	"fmt"
	"reflect"
	"testing"

	"flexftl/internal/experiments"
	"flexftl/internal/ftl"
	"flexftl/internal/sim"
	"flexftl/internal/ssd"
	"flexftl/internal/workload"
)

// shardSnapshot is everything one run exposes, for exact 1-vs-N comparison.
type shardSnapshot struct {
	Run        ssd.RunResult
	MapHash    uint64
	FreeBlocks int
	Counts     any // device op counters (type varies by device family)
}

// trimHeavy is the trim-stress profile: a quarter of requests are host
// discards, so the planner's sharded-trim path (and its R1/pre-run
// interactions) is exercised constantly rather than at Varmail's 5%.
func trimHeavy() workload.Profile {
	return workload.Profile{
		Name: "TrimHeavy", ReadFraction: 0.25, Intensity: workload.IntensityHigh,
		BurstLen: 256, IntraGap: 120 * sim.Microsecond, IdleGap: 5 * sim.Millisecond,
		PagesMean: 1.5, PagesCap: 4, ZipfTheta: 0.9, TrimFraction: 0.25,
	}
}

// shardCell is one (workload, device scale) point of the equivalence matrix.
// GC-stress cells shrink the device (fewer blocks per chip) so a 8000-request
// run actually reaches GC steady state — on the full evaluation geometry the
// free-block reserve would absorb the whole run and the GC pre-run path
// would go unexercised.
type shardCell struct {
	prof     workload.Profile
	blocks   int // blocks per chip (0 = evaluation geometry)
	requests int
}

// shardCells is the equivalence matrix: the serial-golden workloads plus the
// GC-heavy and trim-heavy regimes the widened planner must stay exact on.
func shardCells() []shardCell {
	cells := []shardCell{}
	for _, p := range equivWorkloads() {
		cells = append(cells, shardCell{prof: p, requests: 6000})
	}
	return append(cells,
		shardCell{prof: workload.Fileserver(), blocks: 32, requests: 8000},
		shardCell{prof: trimHeavy(), blocks: 32, requests: 8000},
	)
}

func buildShardSystem(t *testing.T, scheme string, blocks int) (*ssd.System, ftl.Host) {
	t.Helper()
	g := experiments.EvalGeometry()
	if blocks > 0 {
		g.BlocksPerChip = blocks
	}
	h, err := ftl.Build(scheme, ftl.BuildEnv{
		Geometry: g,
		Config:   ftl.DefaultConfig(),
		Flex:     ftl.DefaultFlexParams(),
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := ssd.DefaultConfig()
	if blocks > 0 {
		// Prefill closer to capacity so the workload's write volume pushes
		// the chips into GC steady state, while leaving enough reserve that
		// the sequential prefill itself never collects (its fully-valid
		// blocks would make pathological victims). The buffer is widened so
		// GC-slowed service does not back it up — buffer backpressure (R4)
		// would otherwise absorb the GC-proximate writes before the planner's
		// R5/pre-run path ever saw them.
		cfg.PrefillFraction = 0.88
		cfg.BufferPages = 512
	}
	sys, err := ssd.New(h, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Prefill(); err != nil {
		t.Fatal(err)
	}
	return sys, h
}

func snapshotOutcome(h ftl.Host, run ssd.RunResult) shardSnapshot {
	snap := shardSnapshot{Run: run}
	if m, ok := h.(interface{ MappingHash() uint64 }); ok {
		snap.MapHash = m.MappingHash()
	}
	if fb, ok := h.(interface{ TotalFreeBlocks() int }); ok {
		snap.FreeBlocks = fb.TotalFreeBlocks()
	}
	if f, ok := h.(ftl.FTL); ok {
		snap.Counts = f.Device().Counts()
	}
	return snap
}

// captureSharded runs one (scheme, cell) through RunSharded at the given
// worker count and snapshots the complete outcome plus the planner report.
func captureSharded(t *testing.T, scheme string, cell shardCell, workers int) (shardSnapshot, ssd.ShardReport) {
	t.Helper()
	sys, h := buildShardSystem(t, scheme, cell.blocks)
	gen, err := workload.New(cell.prof, h.LogicalPages(), cell.requests, 42)
	if err != nil {
		t.Fatal(err)
	}
	run, err := sys.RunSharded(gen, workers)
	if err != nil {
		t.Fatal(err)
	}
	return snapshotOutcome(h, run), sys.ShardReport()
}

// TestShardEquivalence pins RunSharded(N) == RunSharded(1) for every
// registry scheme (MLC kernels shard; nflexTLC exercises the serial
// fallback) on the guard, GC-heavy and trim-heavy workloads.
func TestShardEquivalence(t *testing.T) {
	shardedCells := 0
	for _, scheme := range ftl.Names() {
		for _, cell := range shardCells() {
			cell := cell
			scheme := scheme
			t.Run(fmt.Sprintf("%s_%s", scheme, cell.prof.Name), func(t *testing.T) {
				serial, _ := captureSharded(t, scheme, cell, 1)
				for _, workers := range []int{2, 4} {
					sharded, rep := captureSharded(t, scheme, cell, workers)
					if !reflect.DeepEqual(serial, sharded) {
						t.Errorf("workers=%d diverged from workers=1:\nserial:  %+v\nsharded: %+v", workers, serial, sharded)
					}
					if rep.ShardedOps > 0 {
						shardedCells++
					}
				}
			})
		}
	}
	if shardedCells == 0 {
		t.Errorf("no cell executed any sharded epoch — the planner degenerated to all-serial and the contract is vacuous")
	}
}

// TestShardPlannerEffective pins per-workload non-vacuity floors on the
// evaluation geometry: the widened planner must keep a write-heavy
// GC-steady-state workload predominantly sharded (the ISSUE-8 >= 70%
// acceptance bar) with the GC pre-run path actually firing, must shard
// trims on a trim-heavy workload, and must shard a meaningful share of the
// read-heavy guard workload. Equivalence tests alone cannot catch the
// planner rotting into a 100% serial fallback; these floors can.
func TestShardPlannerEffective(t *testing.T) {
	cases := []struct {
		cell       shardCell
		minShare   float64
		wantPreRun bool
		wantTrims  bool
	}{
		{cell: shardCell{prof: workload.Fileserver(), blocks: 32, requests: 8000}, minShare: 0.70, wantPreRun: true},
		{cell: shardCell{prof: trimHeavy(), blocks: 32, requests: 8000}, minShare: 0.50, wantTrims: true},
		{cell: shardCell{prof: workload.OLTP(), requests: 6000}, minShare: 0.50},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.cell.prof.Name, func(t *testing.T) {
			_, rep := captureSharded(t, "flexFTL", tc.cell, 4)
			if rep.Epochs == 0 || rep.ShardedOps == 0 {
				t.Fatalf("planner sharded nothing: %+v", rep)
			}
			if share := rep.ShardedShare(); share < tc.minShare {
				t.Errorf("sharded-op share %.3f below floor %.2f (report %+v)", share, tc.minShare, rep)
			}
			if tc.wantPreRun && rep.GCPreRuns == 0 {
				t.Errorf("GC pre-run path never fired on a GC-steady-state workload (report %+v)", rep)
			}
			if tc.wantTrims && rep.ShardedTrims == 0 {
				t.Errorf("no trims sharded on a trim-heavy workload (report %+v)", rep)
			}
			t.Logf("share=%.3f epochs=%d sharded=%d serial=%d preruns=%d(+%d copies) trims=%d fallbacks=%+v",
				rep.ShardedShare(), rep.Epochs, rep.ShardedOps, rep.SerialOps,
				rep.GCPreRuns, rep.GCPreRunCopies, rep.ShardedTrims, rep.Fallbacks)
		})
	}
}

// TestRunShardedMQEquivalence pins the multi-queue front-end's contract:
// RunShardedMQ over SplitByChannel queues equals the serial Run of the same
// queues merged by arrival — and stays worker-count independent.
func TestRunShardedMQEquivalence(t *testing.T) {
	for _, prof := range []workload.Profile{workload.NTRX(), trimHeavy()} {
		prof := prof
		t.Run(prof.Name, func(t *testing.T) {
			newQueues := func(h ftl.Host) []workload.Generator {
				gens, err := workload.SplitByChannel(prof, h.LogicalPages(), 4000, 42, 4)
				if err != nil {
					t.Fatal(err)
				}
				return gens
			}

			serialSys, serialHost := buildShardSystem(t, "flexFTL", 0)
			serialRun, err := serialSys.Run(workload.MergeByArrival(prof.Name, newQueues(serialHost)...))
			if err != nil {
				t.Fatal(err)
			}
			serial := snapshotOutcome(serialHost, serialRun)

			for _, workers := range []int{1, 4} {
				mqSys, mqHost := buildShardSystem(t, "flexFTL", 0)
				mqRun, err := mqSys.RunShardedMQ(prof.Name, newQueues(mqHost), workers)
				if err != nil {
					t.Fatal(err)
				}
				mq := snapshotOutcome(mqHost, mqRun)
				if !reflect.DeepEqual(serial, mq) {
					t.Errorf("MQ workers=%d diverged from serial merged run:\nserial: %+v\nmq:     %+v", workers, serial, mq)
				}
				if workers == 4 {
					rep := mqSys.ShardReport()
					if rep.ShardedOps == 0 {
						t.Errorf("multi-queue run sharded nothing: %+v", rep)
					}
				}
			}
		})
	}
}
