// Shard-equivalence guard for the epoch-sharded run engine: for every
// registry scheme, RunSharded at workers=N must produce exactly the result
// of workers=1 (which delegates to the serial Run) — metrics, stats,
// latency percentiles, final mapping state, free blocks and device op
// counts, compared with reflect.DeepEqual. Run under -race this also proves
// the shard workers share no unsynchronized state.
//
// The serial goldens themselves are pinned by equivalence_test.go; this file
// extends the contract from across-task determinism (PR 2) to inside a run.
package flexftl_test

import (
	"fmt"
	"reflect"
	"testing"

	"flexftl/internal/experiments"
	"flexftl/internal/ftl"
	"flexftl/internal/ssd"
	"flexftl/internal/workload"
)

// shardSnapshot is everything one run exposes, for exact 1-vs-N comparison.
type shardSnapshot struct {
	Run        ssd.RunResult
	MapHash    uint64
	FreeBlocks int
	Counts     any // device op counters (type varies by device family)
}

// captureSharded runs one (scheme, workload) cell through RunSharded at the
// given worker count and snapshots the complete outcome. It also reports the
// planner effectiveness (sharded epochs, ops) for the vacuity check.
func captureSharded(t *testing.T, scheme string, prof workload.Profile, requests, workers int) (shardSnapshot, int, int) {
	t.Helper()
	h, err := ftl.Build(scheme, ftl.BuildEnv{
		Geometry: experiments.EvalGeometry(),
		Config:   ftl.DefaultConfig(),
		Flex:     ftl.DefaultFlexParams(),
	})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := ssd.New(h, ssd.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Prefill(); err != nil {
		t.Fatal(err)
	}
	gen, err := workload.New(prof, h.LogicalPages(), requests, 42)
	if err != nil {
		t.Fatal(err)
	}
	run, err := sys.RunSharded(gen, workers)
	if err != nil {
		t.Fatal(err)
	}
	snap := shardSnapshot{Run: run}
	if m, ok := h.(interface{ MappingHash() uint64 }); ok {
		snap.MapHash = m.MappingHash()
	}
	if fb, ok := h.(interface{ TotalFreeBlocks() int }); ok {
		snap.FreeBlocks = fb.TotalFreeBlocks()
	}
	if f, ok := h.(ftl.FTL); ok {
		snap.Counts = f.Device().Counts()
	}
	epochs, ops := sys.ShardReport()
	return snap, epochs, ops
}

// TestShardEquivalence pins RunSharded(N) == RunSharded(1) for every
// registry scheme (MLC kernels shard; nflexTLC exercises the serial
// fallback) on both guard workloads.
func TestShardEquivalence(t *testing.T) {
	const requests = 6000
	shardedCells := 0
	for _, scheme := range ftl.Names() {
		for _, prof := range equivWorkloads() {
			prof := prof
			scheme := scheme
			t.Run(fmt.Sprintf("%s_%s", scheme, prof.Name), func(t *testing.T) {
				serial, _, _ := captureSharded(t, scheme, prof, requests, 1)
				for _, workers := range []int{2, 4} {
					sharded, _, ops := captureSharded(t, scheme, prof, requests, workers)
					if !reflect.DeepEqual(serial, sharded) {
						t.Errorf("workers=%d diverged from workers=1:\nserial:  %+v\nsharded: %+v", workers, serial, sharded)
					}
					if ops > 0 {
						shardedCells++
					}
				}
			})
		}
	}
	if shardedCells == 0 {
		t.Errorf("no cell executed any sharded epoch — the planner degenerated to all-serial and the contract is vacuous")
	}
}

// TestShardPlannerEffective pins that the planner actually shards a
// meaningful share of a write-heavy workload on the evaluation geometry —
// the parallel engine must not silently rot into a serial fallback.
func TestShardPlannerEffective(t *testing.T) {
	_, epochs, ops := captureSharded(t, "flexFTL", workload.OLTP(), 6000, 4)
	if epochs == 0 || ops == 0 {
		t.Fatalf("planner sharded nothing (epochs=%d ops=%d)", epochs, ops)
	}
	t.Logf("sharded %d ops over %d epochs (%.1f ops/epoch)", ops, epochs, float64(ops)/float64(epochs))
}
