// Golden equivalence guard for the FTL-kernel refactor: every named FTL is
// driven through the full runner on two workloads and its complete outcome
// (metrics, stats, final mapping state, device operation counts) is pinned
// against a checked-in golden captured from the pre-refactor monoliths.
// reflect.DeepEqual on the decoded goldens makes any behavioral drift —
// a single reordered device operation, one extra erase, a different GC
// victim — a test failure, the same pattern PR 3 used for the victim index.
//
// Regenerate with UPDATE_EQUIV=1 go test -run TestEquivalence . (only
// legitimate when a behavior change is intended and reviewed).
package flexftl_test

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"flexftl/internal/experiments"
	"flexftl/internal/ftl"
	"flexftl/internal/ftl/nflex"
	"flexftl/internal/metrics"
	"flexftl/internal/nand"
	"flexftl/internal/nandn"
	"flexftl/internal/sim"
	"flexftl/internal/ssd"
	"flexftl/internal/workload"
)

const equivRequests = 12000

// equivSnapshot is the pinned outcome of one (FTL, workload) run.
type equivSnapshot struct {
	FTLName    string
	Workload   string
	Metrics    metrics.Result
	Stats      ftl.Stats
	MapHash    uint64
	FreeBlocks int
	Device     nand.OpCounts
}

// equivWorkloads are the two profiles the guard runs: a bursty
// trim-heavy profile and a steady transactional one.
func equivWorkloads() []workload.Profile {
	return []workload.Profile{workload.Varmail(), workload.OLTP()}
}

func captureMLC(t *testing.T, scheme string, prof workload.Profile) equivSnapshot {
	t.Helper()
	f, err := experiments.BuildFTL(scheme, experiments.EvalGeometry())
	if err != nil {
		t.Fatal(err)
	}
	sys, err := ssd.New(f, ssd.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Prefill(); err != nil {
		t.Fatal(err)
	}
	gen, err := workload.New(prof, f.LogicalPages(), equivRequests, 42)
	if err != nil {
		t.Fatal(err)
	}
	run, err := sys.Run(gen)
	if err != nil {
		t.Fatal(err)
	}
	// The bandwidth CDF holds one sample per window — bulky and fully
	// determined by the rest of the run; Mean/Peak pin its content.
	run.Metrics.BandwidthCDF = nil
	hasher := f.(interface{ MappingHash() uint64 })
	free := f.(interface{ TotalFreeBlocks() int })
	return equivSnapshot{
		FTLName:    run.FTLName,
		Workload:   run.Workload,
		Metrics:    run.Metrics,
		Stats:      run.Stats,
		MapHash:    hasher.MappingHash(),
		FreeBlocks: free.TotalFreeBlocks(),
		Device:     f.Device().Counts(),
	}
}

// nflexSnapshot pins the n-level FTL, driven by the same runner semantics
// via a local loop (kept independent of internal/ssd so the capture is
// identical before and after nflex learns to run under it).
type nflexSnapshot struct {
	FTLName     string
	Workload    string
	HostReads   int64
	HostWrites  int64
	HostByLevel []int64
	GCCopies    int64
	Backups     int64
	Erases      int64
	FgGCs       int64
	BgGCs       int64
	MapHash     uint64
	FreeBlocks  int
	EndTime     sim.Time
	DevReads    int64
	DevErases   int64
	DevPrograms []int64
}

func captureNflex(t *testing.T, prof workload.Profile) nflexSnapshot {
	t.Helper()
	g := nandn.TLCGeometry()
	dev, err := nandn.NewDevice(g, nandn.TLCTiming())
	if err != nil {
		t.Fatal(err)
	}
	f, err := nflex.New(dev, ftl.DefaultConfig(), nflex.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	// Sequential prefill to 85% of the logical space, like ssd.Prefill.
	now := sim.Time(0)
	n := int64(float64(f.LogicalPages()) * 0.85)
	for lpn := int64(0); lpn < n; lpn++ {
		done, err := f.Write(ftl.LPN(lpn), now, 0.5)
		if err != nil {
			t.Fatalf("prefill LPN %d: %v", lpn, err)
		}
		now = done
	}
	base := now
	gen, err := workload.New(prof, f.LogicalPages(), equivRequests, 42)
	if err != nil {
		t.Fatal(err)
	}
	logical := f.LogicalPages()
	busyUntil := base
	const idleThreshold = 1 * sim.Millisecond
	for {
		req, ok := gen.Next()
		if !ok {
			break
		}
		arrival := base + req.Arrival
		if arrival > busyUntil+idleThreshold {
			f.Idle(busyUntil, arrival)
		}
		switch req.Op {
		case workload.OpRead:
			completion := arrival
			for p := 0; p < req.Pages; p++ {
				lpn := ftl.LPN((req.Page + int64(p)) % logical)
				done, err := f.Read(lpn, arrival)
				if err != nil {
					continue // unmapped: served from the zero map
				}
				if done > completion {
					completion = done
				}
			}
			if completion > busyUntil {
				busyUntil = completion
			}
		case workload.OpWrite:
			wnow := arrival
			for p := 0; p < req.Pages; p++ {
				lpn := ftl.LPN((req.Page + int64(p)) % logical)
				done, err := f.Write(lpn, wnow, 0.5)
				if err != nil {
					t.Fatalf("write LPN %d: %v", lpn, err)
				}
				wnow = done
			}
			if wnow > busyUntil {
				busyUntil = wnow
			}
		case workload.OpTrim:
			for p := 0; p < req.Pages; p++ {
				lpn := ftl.LPN((req.Page + int64(p)) % logical)
				if _, err := f.Trim(lpn, arrival); err != nil {
					t.Fatalf("trim LPN %d: %v", lpn, err)
				}
			}
		}
	}
	st := f.Stats()
	return nflexSnapshot{
		FTLName:     f.Name(),
		Workload:    gen.Name(),
		HostReads:   st.HostReads,
		HostWrites:  st.HostWrites,
		HostByLevel: f.HostWritesByLevel(),
		GCCopies:    st.GCCopies,
		Backups:     st.BackupWrites,
		Erases:      st.Erases,
		FgGCs:       st.ForegroundGCs,
		BgGCs:       st.BackgroundGCs,
		MapHash:     f.MappingHash(),
		FreeBlocks:  f.TotalFreeBlocks(),
		EndTime:     busyUntil,
		DevReads:    dev.Reads(),
		DevErases:   dev.Erases(),
		DevPrograms: dev.Programs(),
	}
}

func goldenPath(name string) string {
	return filepath.Join("testdata", "equivalence", name+".json")
}

func checkGolden(t *testing.T, name string, got any, fresh func() any) {
	t.Helper()
	path := goldenPath(name)
	if os.Getenv("UPDATE_EQUIV") != "" {
		buf, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden %s (run with UPDATE_EQUIV=1 to create): %v", path, err)
	}
	want := fresh()
	if err := json.Unmarshal(buf, want); err != nil {
		t.Fatalf("decoding %s: %v", path, err)
	}
	if !reflect.DeepEqual(got, want) {
		gotJSON, _ := json.MarshalIndent(got, "", "  ")
		t.Errorf("%s drifted from golden.\ngot:\n%s\nwant:\n%s", name, gotJSON, buf)
	}
}

func TestEquivalenceMLC(t *testing.T) {
	// The paper schemes, plus one placement hybrid: flexFTL-hotcold pins the
	// multi-stream block life cycle (two active fast/slow pairs per chip) the
	// same way. wearAware shares the classify path and differs only in free-
	// block choice, so one placement golden suffices.
	for _, scheme := range append(experiments.Schemes(), "flexFTL-hotcold") {
		for _, prof := range equivWorkloads() {
			name := fmt.Sprintf("%s_%s", scheme, prof.Name)
			t.Run(name, func(t *testing.T) {
				snap := captureMLC(t, scheme, prof)
				checkGolden(t, name, &snap, func() any { return &equivSnapshot{} })
			})
		}
	}
}

func TestEquivalenceNflex(t *testing.T) {
	for _, prof := range equivWorkloads() {
		name := fmt.Sprintf("nflexTLC_%s", prof.Name)
		t.Run(name, func(t *testing.T) {
			snap := captureNflex(t, prof)
			checkGolden(t, name, &snap, func() any { return &nflexSnapshot{} })
		})
	}
}
