module flexftl

go 1.22
