// End-to-end determinism pin for the O(1) victim index: a full ssd.Run with
// the indexed picker must produce results byte-identical to the retained
// reference linear scan, for every FTL and both GC policies. This is the
// contract that lets the index replace the scan without an accuracy audit —
// any drift in victim choice cascades into different GC timing, erase counts,
// and IOPS, and DeepEqual on the whole RunResult would catch it.
package flexftl_test

import (
	"reflect"
	"testing"

	"flexftl/internal/core"
	"flexftl/internal/experiments"
	"flexftl/internal/ftl"
	"flexftl/internal/ftl/flexftl"
	"flexftl/internal/ftl/pageftl"
	"flexftl/internal/ftl/parityftl"
	"flexftl/internal/ftl/rtfftl"
	"flexftl/internal/nand"
	"flexftl/internal/ssd"
	"flexftl/internal/workload"
)

// victimReferencer is implemented by every FTL embedding ftl.Base (and by
// nflex, tested in its own package): it flips every chip pool between the
// indexed picker and the reference scan.
type victimReferencer interface {
	SetVictimReference(bool)
}

// runWithPicker builds a fresh FTL, optionally switches it to the reference
// picker, and runs the standard prefill + workload cycle.
func runWithPicker(t *testing.T, build func() (ftl.FTL, error), prof workload.Profile, reference bool) ssd.RunResult {
	t.Helper()
	f, err := build()
	if err != nil {
		t.Fatal(err)
	}
	vr, ok := f.(victimReferencer)
	if !ok {
		t.Fatalf("%T does not expose SetVictimReference", f)
	}
	vr.SetVictimReference(reference)
	sys, err := ssd.New(f, ssd.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Prefill(); err != nil {
		t.Fatal(err)
	}
	gen, err := workload.New(prof, f.LogicalPages(), 6000, 42)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run(gen)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestVictimIndexEndToEnd runs every scheme under a GC-heavy workload with
// both pickers and requires identical RunResults.
func TestVictimIndexEndToEnd(t *testing.T) {
	for _, scheme := range experiments.Schemes() {
		scheme := scheme
		for _, prof := range []workload.Profile{workload.NTRX(), workload.Varmail()} {
			prof := prof
			t.Run(scheme+"/"+prof.Name, func(t *testing.T) {
				t.Parallel()
				build := func() (ftl.FTL, error) {
					return experiments.BuildFTL(scheme, benchGeometry())
				}
				indexed := runWithPicker(t, build, prof, false)
				ref := runWithPicker(t, build, prof, true)
				if !reflect.DeepEqual(indexed, ref) {
					t.Errorf("indexed picker diverged from reference scan:\nindexed:   %+v\nreference: %+v", indexed, ref)
				}
			})
		}
	}
}

// TestVictimIndexEndToEndCostBenefit repeats the pin under the cost-benefit
// policy, which exercises the lazily rebuilt heap instead of the buckets.
func TestVictimIndexEndToEndCostBenefit(t *testing.T) {
	builders := []struct {
		name  string
		build func(cfg ftl.Config) (ftl.FTL, error)
	}{
		{"pageFTL", func(cfg ftl.Config) (ftl.FTL, error) {
			return pageftl.New(newDetDevice(core.FPS), cfg)
		}},
		{"parityFTL", func(cfg ftl.Config) (ftl.FTL, error) {
			return parityftl.New(newDetDevice(core.FPS), cfg)
		}},
		{"rtfFTL", func(cfg ftl.Config) (ftl.FTL, error) {
			return rtfftl.New(newDetDevice(core.FPS), cfg)
		}},
		{"flexFTL", func(cfg ftl.Config) (ftl.FTL, error) {
			return flexftl.New(newDetDevice(core.RPS), cfg, flexftl.DefaultParams())
		}},
	}
	for _, bc := range builders {
		bc := bc
		t.Run(bc.name, func(t *testing.T) {
			t.Parallel()
			cfg := ftl.DefaultConfig()
			cfg.GC = ftl.GCCostBenefit
			build := func() (ftl.FTL, error) { return bc.build(cfg) }
			prof := workload.NTRX()
			indexed := runWithPicker(t, build, prof, false)
			ref := runWithPicker(t, build, prof, true)
			if !reflect.DeepEqual(indexed, ref) {
				t.Errorf("cost-benefit indexed picker diverged from reference:\nindexed:   %+v\nreference: %+v", indexed, ref)
			}
		})
	}
}

// newDetDevice builds the bench-scale device used by the determinism tests;
// panics on error because the geometry is a compile-time constant.
func newDetDevice(rules core.RuleSet) *nand.Device {
	dev, err := nand.NewDevice(nand.Config{
		Geometry: benchGeometry(), Timing: nand.DefaultTiming(), Rules: rules,
	})
	if err != nil {
		panic(err)
	}
	return dev
}
